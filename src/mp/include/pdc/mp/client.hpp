#pragma once
// Pipelined asynchronous DHT client — serving the hash-partitioned table
// like a KV store instead of a BSP lab exercise.
//
// BspHashMap::round() is bulk-synchronous: every op waits for a global
// superstep, so throughput is capped at (ops per round) / (round latency)
// and one slow shard stalls every rank. DhtClient keeps the same shards
// and the same owner function (shard_owner) but drops the superstep:
//
//  - puts/gets return immediately with a completion future (DhtFuture);
//  - ops headed to the same shard coalesce into one wire batch (puts are
//    last-writer-wins within the batch, duplicate gets are asked once and
//    fanned back out to every waiter);
//  - each destination shard has an outstanding-op window: submissions
//    beyond it either block (pumping the progress loop, so the rank keeps
//    serving its own shard while it waits — backpressure) or are shed
//    (DhtOpStatus::kShed) when Options::shed is set — admission control;
//  - every rank is simultaneously a server: any blocking wait pumps
//    poll(), which answers incoming request batches from the local shard.
//
// The protocol is deadlock-free by construction: no rank ever blocks
// without serving. Requests and replies ride ordinary tagged user
// messages on the plain or reliable channel (Options::reliable), so
// FaultPlan fuzzing applies unchanged; per-flow batch sequence numbers
// let a server prove exactly-once application (a replayed or skipped
// batch throws instead of silently corrupting the shard). Peer death is
// detected at every wait point and surfaces as RankFailedError.
//
// Collective structure: construct one client per rank, then pair every
// fence() and the final shutdown() across all ranks. Between those
// points, ranks are free-running — that is the point. Don't call bare
// blocking collectives (barrier, reduce, ...) while ops are outstanding;
// fence() is the synchronization that keeps serving.

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "pdc/mp/comm.hpp"
#include "pdc/mp/dht.hpp"

namespace pdc::mp {

class DhtClient;

/// Reserved user tags for the client protocol (one client per rank per
/// communicator run; other user traffic must avoid these).
inline constexpr int kDhtReqTag = 0x7D470001;    ///< request batches
inline constexpr int kDhtRepTag = 0x7D470002;    ///< reply batches
inline constexpr int kDhtFenceTag = 0x7D470003;  ///< fence tokens/releases
inline constexpr int kDhtDoneTag = 0x7D470004;   ///< shutdown notices

/// Completion state of one async op.
enum class DhtOpStatus {
  kPending,  ///< submitted, not yet answered by the owner shard
  kDone,     ///< applied/answered; result available
  kShed,     ///< rejected by admission control (window full, shed mode)
};

namespace detail {
struct OpPool;

/// Versioned open-addressing key -> index map for in-batch coalescing.
/// The map is filled and cleared once per wire batch on the submit hot
/// path; std::unordered_map pays a node allocation per insert and an
/// O(buckets) clear there. Here clear() is a version bump and probes walk
/// a flat power-of-two array.
struct DedupMap {
  struct Slot {
    std::int64_t key = 0;
    std::uint32_t idx = 0;
    std::uint32_t ver = 0;
  };
  std::vector<Slot> slots;
  std::size_t mask = 0;
  std::uint32_t ver = 0;

  /// Size for at most max_entries live keys between clears (load <= 1/2).
  void init(std::size_t max_entries) {
    std::size_t cap = 8;
    while (cap < 2 * max_entries) cap <<= 1;
    slots.assign(cap, Slot{});
    mask = cap - 1;
    ver = 1;
  }

  void clear() {
    if (++ver == 0) {  // version wrapped: stale slots could match again
      for (auto& s : slots) s.ver = 0;
      ver = 1;
    }
  }

  /// Insert key -> idx if absent; returns {existing-or-new idx, inserted}.
  std::pair<std::uint32_t, bool> upsert(std::int64_t key, std::uint32_t idx) {
    auto h = static_cast<std::size_t>(mix64(static_cast<std::uint64_t>(key))) &
             mask;
    while (true) {
      Slot& s = slots[h];
      if (s.ver != ver) {
        s.key = key;
        s.idx = idx;
        s.ver = ver;
        return {idx, true};
      }
      if (s.key == key) return {s.idx, false};
      h = (h + 1) & mask;
    }
  }
};

class OpRef;

struct DhtOp {
  std::int64_t key = 0;
  std::int64_t value = 0;  ///< put: value written; get: value read
  int dest = 0;
  bool is_get = false;
  bool found = false;
  DhtOpStatus status = DhtOpStatus::kPending;
  std::chrono::steady_clock::time_point submitted;
  /// Intrusive chain of futures waiting on the same deduped get — avoids
  /// a heap-allocated waiter vector per unique key per batch.
  DhtOp* next_waiter = nullptr;  ///< owns one ref to the chained op
  OpPool* pool = nullptr;
  std::uint32_t refs = 0;
};

/// Rank-thread-local smart pointer to a pooled DhtOp. A client's ops and
/// futures never leave their rank thread, so the refcount is a plain int:
/// profiles showed std::shared_ptr's heap round trip plus atomic refcount
/// traffic as the largest per-op cost on the serving hot path.
class OpRef {
 public:
  OpRef() = default;
  explicit OpRef(DhtOp* p) : p_(p) {
    if (p_ != nullptr) ++p_->refs;
  }
  OpRef(const OpRef& o) : OpRef(o.p_) {}
  OpRef(OpRef&& o) noexcept : p_(o.p_) { o.p_ = nullptr; }
  OpRef& operator=(OpRef o) noexcept {
    std::swap(p_, o.p_);
    return *this;
  }
  ~OpRef() { reset(); }

  void reset();
  /// Detach: the caller takes over this reference (no refcount change).
  [[nodiscard]] DhtOp* release() {
    DhtOp* p = p_;
    p_ = nullptr;
    return p;
  }
  [[nodiscard]] DhtOp* get() const { return p_; }
  DhtOp& operator*() const { return *p_; }
  DhtOp* operator->() const { return p_; }
  explicit operator bool() const { return p_ != nullptr; }

 private:
  DhtOp* p_ = nullptr;
};

/// Slab + freelist recycler for DhtOp nodes. One per client; addresses
/// are stable (deque slab) and a freed node is a pointer push, so op
/// allocation never touches the heap after warm-up.
struct OpPool {
  std::vector<DhtOp*> free_list;
  std::deque<DhtOp> slab;
  std::int64_t live = 0;  ///< ops whose refcount has not yet hit zero

  OpRef take() {
    DhtOp* p = nullptr;
    if (!free_list.empty()) {
      p = free_list.back();
      free_list.pop_back();
    } else {
      p = &slab.emplace_back();
      p->pool = this;
    }
    p->found = false;
    p->status = DhtOpStatus::kPending;
    p->next_waiter = nullptr;
    ++live;
    return OpRef(p);
  }
};

inline void OpRef::reset() {
  DhtOp* p = p_;
  p_ = nullptr;
  // Dropping an op releases its waiter chain iteratively — a deep chain
  // of deduped gets must not recurse.
  while (p != nullptr && --p->refs == 0) {
    DhtOp* next = p->next_waiter;
    p->next_waiter = nullptr;
    p->pool->free_list.push_back(p);
    --p->pool->live;
    p = next;
  }
}
}  // namespace detail

/// Completion handle for one async op. Single-threaded per rank: wait()
/// drives the owning client's progress loop (serving peers) until this
/// op completes. Futures must not outlive their client.
class DhtFuture {
 public:
  DhtFuture() = default;

  [[nodiscard]] bool valid() const { return op_.get() != nullptr; }
  [[nodiscard]] DhtOpStatus status() const { return op_->status; }
  [[nodiscard]] bool done() const {
    return op_->status != DhtOpStatus::kPending;
  }

  /// Block (serving peers meanwhile) until the op completes; returns the
  /// result. For a put, found is true and value echoes the value written.
  /// Throws std::runtime_error if the op was shed, RankFailedError if the
  /// owner shard's rank died first.
  GetResult wait();

 private:
  friend class DhtClient;
  DhtFuture(DhtClient* client, detail::OpRef op)
      : client_(client), op_(std::move(op)) {}

  DhtClient* client_ = nullptr;
  detail::OpRef op_;
};

class DhtClient {
 public:
  struct Options {
    /// Max outstanding ops per destination shard (batched-but-unsent +
    /// on-the-wire). Beyond it, submit blocks or sheds.
    int window = 64;
    /// Ops coalesced into one wire batch. A batch goes out as soon as the
    /// wire to that shard is idle, so an isolated op still leaves
    /// immediately — under load, batches grow toward this cap.
    int max_batch = 16;
    /// Route client traffic over the reliable channel (seq/ack/retry +
    /// dead-rank detection) regardless of the context's current mode.
    bool reliable = false;
    /// Admission control: shed ops (complete as kShed) instead of
    /// blocking when the destination window is full.
    bool shed = false;
  };

  explicit DhtClient(RankContext& ctx) : DhtClient(ctx, Options{}) {}
  DhtClient(RankContext& ctx, Options opts);
  DhtClient(const DhtClient&) = delete;
  DhtClient& operator=(const DhtClient&) = delete;
  ~DhtClient();

  /// Queue an async write. Last writer wins — within one batch by
  /// submission order, across batches by server arrival order.
  DhtFuture put(std::int64_t key, std::int64_t value);

  /// Queue an async read. Gets observe every put submitted before them to
  /// the same shard batch (the owner applies a batch's puts before
  /// answering its gets — the same semantics as BspHashMap::round).
  DhtFuture get(std::int64_t key);

  /// One nonblocking progress pump: serve incoming request batches from
  /// the local shard, absorb replies (completing futures), and push any
  /// batch whose wire went idle.
  void poll();

  /// Force open batches onto the wire now (nonblocking).
  void flush();

  /// Block — serving peers — until every op this rank submitted has
  /// completed.
  void drain();

  /// Collective quiescence point: after every rank's fence() returns,
  /// every op submitted before the fence (on any rank) is applied and
  /// visible to every get submitted after it. Keeps serving throughout.
  void fence();

  /// Collective teardown: drain, then keep serving until every peer has
  /// also shut down. Must be the last client call on every rank.
  void shutdown();

  /// Owner rank of a key (same placement as BspHashMap).
  [[nodiscard]] int owner(std::int64_t key) const;

  /// Number of keys stored in this rank's shard.
  [[nodiscard]] std::size_t local_size() const { return shard_.size(); }

  /// Ops this rank has submitted that have not completed yet.
  [[nodiscard]] int outstanding() const { return outstanding_; }

 private:
  friend class DhtFuture;

  struct SentBatch {
    std::int64_t seq = 0;
    int ops = 0;
    std::vector<detail::OpRef> puts;
    /// Per unique requested key, the head of its waiter chain.
    std::vector<detail::OpRef> gets;
  };

  struct DestQueue {
    // Open batch under assembly (coalesced).
    std::vector<std::pair<std::int64_t, std::int64_t>> put_kv;
    detail::DedupMap put_idx;
    std::vector<std::int64_t> get_keys;
    detail::DedupMap get_idx;
    std::vector<detail::OpRef> open_puts;
    std::vector<detail::OpRef> open_gets;  ///< chain heads
    int open_ops = 0;
    // Batches on the wire, FIFO (per-flow ordering matches replies).
    std::deque<SentBatch> sent;
    std::int64_t next_seq = 0;
    int inflight_ops = 0;  ///< open + sent ops not yet completed
  };

  DhtFuture submit(bool is_get, std::int64_t key, std::int64_t value);
  void send_batch(int dest);
  void maybe_send(int dest);
  bool serve_once();
  void handle_request(int source, const Message& msg);
  bool absorb_replies();
  bool poll_once();
  void complete(detail::DhtOp& op, bool found, std::int64_t value,
                std::chrono::steady_clock::time_point now);
  void flush_pending_counts();
  void wait_for(const detail::DhtOp& op);
  void check_dest_alive(int dest) const;
  Message take_serving(int source, int tag);
  void tagged_send(int dest, int tag, std::vector<std::int64_t> data);

  RankContext* ctx_;
  Options opts_;
  /// Recycles DhtOp nodes. Declared before (destroyed after) the queues
  /// that hold OpRefs into it; see ~DhtClient for the escaped-future case.
  std::unique_ptr<detail::OpPool> pool_;
  std::vector<DestQueue> dest_;
  std::unordered_map<std::int64_t, std::int64_t> shard_;
  std::vector<std::int64_t> peer_seq_;  ///< last batch applied, per source
  /// Per-op metric bumps accumulate here and flush to the process-global
  /// (atomic, sharded) counters per batch and at every blocking point — a
  /// global add per op is measurable on the serving hot path.
  struct PendingCounts {
    std::int64_t puts = 0;
    std::int64_t gets = 0;
    std::int64_t local = 0;
    std::int64_t dedup = 0;
    std::int64_t coalesce = 0;
  };
  PendingCounts pending_;
  // Submission timestamps are sampled once per kClockStride ops: a clock
  // read per op is measurable on the serving hot path, and a stale-by-a-
  // few-ops stamp only rounds latencies up. Reset after any blocking wait
  // so an idle gap never leaks into the next op's latency.
  static constexpr std::uint32_t kClockStride = 16;
  std::uint32_t clock_tick_ = 0;
  std::chrono::steady_clock::time_point cached_now_{};
  int outstanding_ = 0;
  bool shut_down_ = false;
};

}  // namespace pdc::mp
