#pragma once
// In-process message passing with MPI semantics (the CS87 MPI-lab
// substrate): P ranks run as threads sharing NO data; all communication is
// explicit tagged messages. Collectives are implemented on top of
// send/recv — the point of the lab is that broadcast, reduce, scatter,
// gather and scan are just message *patterns*.
//
// The substitution for real MPI on a cluster: wall-clock network cost is
// replaced by exact traffic accounting (messages and payload words), which
// is what the course's analysis compares anyway.
//
// Two channels share the mailbox fabric:
//  - the plain channel: exact, in-order, instant (the seed behavior), and
//  - the reliable channel (RankContext::set_reliable): per-flow sequence
//    numbers, transport acks, timeout + exponential-backoff retransmit,
//    and duplicate suppression — the machinery a FaultPlan (fault.hpp)
//    attacks with drops, duplicates, reordering and rank-kill.
// Blocked receives on either channel detect dead/exited peers and throw
// RankFailedError instead of hanging.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "pdc/mp/fault.hpp"
#include "pdc/mp/transport.hpp"

namespace pdc::mp {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// A received message.
struct Message {
  int source = 0;
  int tag = 0;
  std::vector<std::int64_t> data;
};

/// Reduction operators for reduce/allreduce/scan.
enum class ReduceOp { kSum, kProd, kMin, kMax };

[[nodiscard]] std::int64_t apply(ReduceOp op, std::int64_t a, std::int64_t b);
[[nodiscard]] std::int64_t identity(ReduceOp op);

/// Threading contract for one rank's communication calls (the MPI
/// `MPI_THREAD_*` ladder, restricted to the two rungs this runtime
/// supports). A RankContext is NOT a thread-safe object; the mode says
/// which single thread is allowed to touch it:
///
///  - kSingle   (default): only the thread the rank body started on may
///    communicate. Pinned when the RankContext is constructed.
///  - kFunneled: the rank body is multi-threaded (e.g. runs a core::Team
///    per step), but ALL communication still funnels through exactly one
///    thread — the one that called set_threading(kFunneled). This is how
///    the hybrid stencil engine runs: worker threads compute tiles, the
///    team's rank-0 thread owns every send/recv/collective.
///
/// The contract is enforced: every p2p call, probe, arrival wait and
/// collective checks the calling thread (when PDC_MP_THREAD_CHECKS is on,
/// the default outside NDEBUG builds) and throws std::logic_error on a
/// violation — a deterministic failure instead of a silent mailbox race.
enum class Threading {
  kSingle,    ///< one thread per rank, pinned at construction
  kFunneled,  ///< many compute threads, one designated comm thread
};

#ifndef PDC_MP_THREAD_CHECKS
#ifdef NDEBUG
#define PDC_MP_THREAD_CHECKS 0
#else
#define PDC_MP_THREAD_CHECKS 1
#endif
#endif

/// True when RankContext verifies the Threading contract on every comm
/// call (debug builds; compiled out under NDEBUG).
[[nodiscard]] constexpr bool thread_checks_enabled() {
  return PDC_MP_THREAD_CHECKS != 0;
}

/// Collective algorithm selector (the bench compares them).
enum class CollectiveAlgo {
  kFlat,  ///< root talks to everyone directly: P-1 messages, P-1 rounds at root
  kTree,  ///< binomial tree: P-1 messages, ceil(log2 P) rounds
};

/// Aggregate traffic counters for a communicator run. The reliability
/// counters stay zero on a clean plain-channel run, so benches can price
/// exactly what a fault plan and the retry machinery cost.
///
/// This is a value snapshot over the communicator's pdc::obs counters
/// (which also feed the process-global "mp.*" registry metrics). The
/// arithmetic gives snapshot-delta semantics: `after - before` prices one
/// phase, `a + b` merges runs — no hand-subtracted fields in benches.
struct TrafficStats {
  std::uint64_t messages = 0;       ///< data messages enqueued at a mailbox
  std::uint64_t payload_words = 0;  ///< total int64 values moved
  std::uint64_t acks = 0;        ///< transport acks delivered to senders
  std::uint64_t retries = 0;     ///< retransmission attempts (reliable sends)
  std::uint64_t dropped = 0;     ///< deliveries eaten by the fault plan
  std::uint64_t duplicates = 0;  ///< replayed copies suppressed by seq dedup
  std::uint64_t delayed = 0;     ///< deliveries held back for reordering

  bool operator==(const TrafficStats&) const = default;

  TrafficStats& operator+=(const TrafficStats& o) {
    messages += o.messages;
    payload_words += o.payload_words;
    acks += o.acks;
    retries += o.retries;
    dropped += o.dropped;
    duplicates += o.duplicates;
    delayed += o.delayed;
    return *this;
  }
  TrafficStats& operator-=(const TrafficStats& o) {
    messages -= o.messages;
    payload_words -= o.payload_words;
    acks -= o.acks;
    retries -= o.retries;
    dropped -= o.dropped;
    duplicates -= o.duplicates;
    delayed -= o.delayed;
    return *this;
  }
  friend TrafficStats operator+(TrafficStats a, const TrafficStats& b) {
    return a += b;
  }
  friend TrafficStats operator-(TrafficStats a, const TrafficStats& b) {
    return a -= b;
  }
};

class Communicator;

namespace detail {
struct CommState;
}

/// Handle for a nonblocking receive. Holds only a weak reference to the
/// communicator's shared state: a Request that leaks out of a rank body
/// and outlives its Communicator throws std::runtime_error from test()
/// and wait() instead of touching freed memory.
class Request {
 public:
  /// True once a matching message is available (does not consume it).
  [[nodiscard]] bool test();
  /// Block until matched; returns the message (consumes it).
  Message wait();

 private:
  friend class RankContext;
  Request(std::weak_ptr<detail::CommState> state, int rank, int source,
          int tag)
      : state_(std::move(state)), rank_(rank), source_(source), tag_(tag) {}
  std::weak_ptr<detail::CommState> state_;
  int rank_;
  int source_;
  int tag_;
};

/// Per-rank API handed to the SPMD function.
class RankContext {
 public:
  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const;

  /// Route this rank's sends (point-to-point AND collectives) through the
  /// reliable channel: sequence numbers, acks, retransmit on loss, dead
  /// rank detection. Off by default — the plain channel is exact.
  void set_reliable(bool on) { reliable_ = on; }
  [[nodiscard]] bool reliable() const { return reliable_; }

  /// Declare this rank's threading mode (see Threading above) and pin the
  /// communication funnel to the CALLING thread. kSingle is the default,
  /// pinned to the thread that constructed the context. A multi-threaded
  /// rank body must call set_threading(kFunneled) from the one thread
  /// that will own all communication — before any other thread exists is
  /// safest; at a point where no comm call is in flight is required.
  void set_threading(Threading mode) {
    threading_ = mode;
    comm_thread_.store(std::this_thread::get_id(),
                       std::memory_order_release);
  }
  [[nodiscard]] Threading threading() const { return threading_; }

  /// The communicator's fault plan (test hook: lets harness bodies key
  /// expectations off the active plan).
  [[nodiscard]] const FaultPlan& fault_plan() const;

  /// This process's traffic ledger (== Communicator::traffic()). On the
  /// in-process backend every rank shares one ledger; on the process
  /// backends each rank counts only the frames its own process saw — sum
  /// rank-0-or-every-process contributions (see cross_process()) to
  /// compare totals across backends.
  [[nodiscard]] TrafficStats traffic() const;

  /// True when each rank runs as its own OS process (shm/tcp backends).
  [[nodiscard]] bool cross_process() const;

  /// Backend name: "inproc", "shm", or "tcp".
  [[nodiscard]] const char* transport_name() const;

  // ---- point to point ----

  /// Buffered send: enqueues and returns (like MPI_Send with buffering).
  /// User tags must be >= 0 (negative tags are reserved for collectives).
  void send(int dest, int tag, std::vector<std::int64_t> data);
  void send_value(int dest, int tag, std::int64_t value);

  /// Blocking receive with optional wildcards kAnySource / kAnyTag.
  /// Throws RankFailedError if the awaited source can no longer send.
  ///
  /// kAnySource is rejected (std::logic_error) while this rank is on the
  /// reliable channel: an any-source wait cannot tell which sender it is
  /// actually waiting for, so one dead or partitioned peer turns a
  /// recoverable loss into a silent hang (every other peer keeps the
  /// match-set "alive" forever). Reliable protocols must receive
  /// per-source — poll probe(source, tag) across sources, or take from
  /// each source in turn, exactly as the flat reduce and the DHT client
  /// do.
  Message recv(int source = kAnySource, int tag = kAnyTag);
  std::int64_t recv_value(int source = kAnySource, int tag = kAnyTag);

  /// True while `rank` is still executing the SPMD body (it may yet send
  /// or serve). False once it finished, was killed, or threw — a peer
  /// with pending work owed to us that stops running is a failure the
  /// caller can convert into RankFailedError instead of spinning forever.
  [[nodiscard]] bool peer_running(int rank) const;

  /// Nonblocking probe: is a matching message waiting?
  [[nodiscard]] bool probe(int source = kAnySource, int tag = kAnyTag);

  /// Messages ever delivered into this rank's mailbox (monotonic, counts
  /// arrivals — not consumption). The handle for event-driven polling
  /// loops: snapshot arrivals(), poll, and if the poll found nothing call
  /// wait_arrivals(snapshot) to sleep until something new lands.
  [[nodiscard]] std::uint64_t arrivals() const;

  /// Block until arrivals() exceeds `seen`, a bounded wait elapses, or a
  /// peer stops running — whichever is first. Returns the current count.
  /// The bounded wait (~1ms) means callers can re-check liveness and shed
  /// conditions without busy-spinning; on the fast path a delivery wakes
  /// the waiter immediately via the mailbox condition variable.
  std::uint64_t wait_arrivals(std::uint64_t seen);

  /// Nonblocking receive.
  [[nodiscard]] Request irecv(int source = kAnySource, int tag = kAnyTag);

  // ---- collectives (every rank must call, in the same order) ----

  void barrier();

  /// Root's `data` is distributed to all ranks; everyone returns it.
  std::vector<std::int64_t> broadcast(int root, std::vector<std::int64_t> data,
                                      CollectiveAlgo algo = CollectiveAlgo::kTree);
  std::int64_t broadcast_value(int root, std::int64_t value,
                               CollectiveAlgo algo = CollectiveAlgo::kTree);

  /// Combine every rank's value at root (others return identity(op)).
  std::int64_t reduce(int root, std::int64_t value, ReduceOp op,
                      CollectiveAlgo algo = CollectiveAlgo::kTree);

  /// Reduce + broadcast: every rank returns the combined value.
  std::int64_t allreduce(std::int64_t value, ReduceOp op);

  /// Root receives [value_0, ..., value_{P-1}]; others get empty.
  std::vector<std::int64_t> gather(int root, std::int64_t value);

  /// Root supplies P values; every rank returns its own.
  std::int64_t scatter(int root, const std::vector<std::int64_t>& values);

  /// All ranks receive everyone's value, in rank order.
  std::vector<std::int64_t> allgather(std::int64_t value);

  /// Exclusive prefix: rank r returns op(value_0, ..., value_{r-1});
  /// rank 0 returns identity(op).
  std::int64_t exscan(std::int64_t value, ReduceOp op);

  /// Personalized all-to-all: `outgoing[d]` is sent to rank d (size must
  /// be P); returns incoming[s] = what rank s sent to this rank.
  std::vector<std::vector<std::int64_t>> alltoall(
      std::vector<std::vector<std::int64_t>> outgoing);

  /// Combined send+recv (deadlock-free even unbuffered): sends `data` to
  /// `dest` and returns the message received from `source`, both under
  /// `tag` (reserved per call).
  std::vector<std::int64_t> sendrecv(int dest, std::vector<std::int64_t> data,
                                     int source);

 private:
  friend class Communicator;
  RankContext(Communicator* comm, int rank);

  /// Fresh reserved (negative) tag for the next collective. Every rank
  /// calls collectives in the same order, so local counters agree.
  [[nodiscard]] int next_collective_tag();

  /// If the fault plan kills this rank at this op count, die now.
  void maybe_kill();

  /// Enforce the Threading contract: the caller must be the designated
  /// comm thread (throws std::logic_error otherwise). Compiled to nothing
  /// when PDC_MP_THREAD_CHECKS is off.
  void check_comm_thread() const;

  /// Channel send/take: count the op, honor the kill schedule, then route
  /// through the plain or reliable channel. All p2p calls and collective
  /// message patterns funnel through these two.
  void ch_send(int dest, int tag, std::vector<std::int64_t> data);
  Message ch_take(int source, int tag);

  /// Reliable channel: stop-and-wait per (this rank -> dest) flow with
  /// retransmission; throws RankFailedError if dest dies or never acks.
  void reliable_send(int dest, int tag, std::vector<std::int64_t> data);

  Communicator* comm_;
  int rank_;
  int collective_seq_ = 0;
  bool reliable_ = false;
  Threading threading_ = Threading::kSingle;
  std::atomic<std::thread::id> comm_thread_;  ///< the one thread allowed in
  long ops_ = 0;                           ///< channel ops completed (kill clock)
  std::vector<std::uint64_t> send_seq_;    ///< per-dest reliable flow sequence
};

/// Flip a rank onto (or off) the reliable channel for one scope,
/// restoring the caller's mode on every exit path — the guard both the
/// BSP map and the pipelined DHT client use so per-protocol channel
/// choices never leak into the caller's subsequent traffic.
class ReliableModeScope {
 public:
  ReliableModeScope(RankContext& ctx, bool want)
      : ctx_(ctx), prev_(ctx.reliable()) {
    if (want != prev_) ctx_.set_reliable(want);
  }
  ~ReliableModeScope() { ctx_.set_reliable(prev_); }
  ReliableModeScope(const ReliableModeScope&) = delete;
  ReliableModeScope& operator=(const ReliableModeScope&) = delete;

 private:
  RankContext& ctx_;
  bool prev_;
};

/// Runs an SPMD function over `size` ranks. With the default in-process
/// transport every rank is a thread of this process; constructed from a
/// TransportOptions naming a process backend (shm, tcp), this process IS
/// one rank of a multi-process world and run() executes the body for that
/// rank only, while the transport's progress machinery keeps the mailbox,
/// reliable-channel acks, and rank liveness flowing.
class Communicator {
 public:
  explicit Communicator(int size);
  Communicator(int size, FaultPlan plan);

  /// Join (or host, for inproc) a world described by `topt`. For process
  /// backends the constructor does not touch the network; the rendezvous
  /// handshake happens in run(), which all ranks must reach.
  explicit Communicator(const TransportOptions& topt);

  /// Install a fault schedule (before run). See fault.hpp.
  void set_fault_plan(FaultPlan plan);
  [[nodiscard]] const FaultPlan& fault_plan() const;

  /// Tune the reliable channel's retransmission behavior (before run).
  void set_retry_policy(RetryPolicy policy);
  [[nodiscard]] const RetryPolicy& retry_policy() const;

  /// Launch all local ranks, wait for completion. Exceptions from any
  /// local rank are rethrown after all threads join — root-cause
  /// (non-RankFailedError) exceptions first by rank order; a fault-plan
  /// kill surfaces as a deterministic RankFailedError naming the victim
  /// and the plan. On a process backend the body runs once (for this
  /// process's rank), a fault-plan kill of this rank is a real SIGKILL,
  /// and a peer rank's death surfaces as the same RankFailedError the
  /// in-process backend produces.
  void run(const std::function<void(RankContext&)>& body);

  [[nodiscard]] int size() const { return size_; }
  /// This process's rank on a process backend; -1 when all ranks are
  /// local (inproc).
  [[nodiscard]] int local_rank() const { return local_rank_; }
  [[nodiscard]] TrafficStats traffic() const;
  void reset_traffic();

 private:
  friend class RankContext;
  friend class Request;

  void run_local_threads(const std::function<void(RankContext&)>& body);
  void run_process_rank(const std::function<void(RankContext&)>& body);

  int size_;
  int local_rank_ = -1;
  bool ran_ = false;
  std::shared_ptr<detail::CommState> st_;
  std::unique_ptr<Transport> transport_;
};

}  // namespace pdc::mp
