#pragma once
// Deterministic workload generation for the KV-serving benches and tests:
// a splitmix64 value stream and a Zipf(theta) key sampler. Both are pure
// functions of their seed, so every rank of an SPMD body can derive its
// own stream and the run replays bit-for-bit — the same discipline as the
// fault plans.
//
// Zipf is the standard skewed-popularity model for KV serving (YCSB's
// default): P(rank k) ~ 1/k^theta over n keys. theta = 0 is uniform;
// theta ~ 0.99 is the classic "hot-key" web workload where a few keys
// absorb most of the traffic — exactly the shape that punishes bad shard
// placement and per-shard queueing.

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "pdc/mp/fault.hpp"

namespace pdc::mp {

/// splitmix64 PRNG: tiny state, high quality, and the same finalizer the
/// fault layer and shard placement already use.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : x_(seed) {}

  std::uint64_t next() {
    x_ += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1) (53-bit mantissa trick).
  double next_unit() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

 private:
  std::uint64_t x_;
};

/// Zipf(theta) sampler over {0, ..., n-1} by inverse-CDF binary search on
/// a precomputed cumulative table (O(n) setup, O(log n) per draw, exact).
/// Key 0 is the hottest. theta = 0 degrades to uniform.
class ZipfGenerator {
 public:
  ZipfGenerator(std::size_t n, double theta, std::uint64_t seed)
      : rng_(seed), cdf_(n) {
    if (n == 0) throw std::invalid_argument("zipf: need at least one key");
    double sum = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      sum += 1.0 / std::pow(static_cast<double>(k + 1), theta);
      cdf_[k] = sum;
    }
    for (auto& c : cdf_) c /= sum;
  }

  /// Next key index, 0-based, 0 = hottest.
  std::int64_t next() {
    const double u = rng_.next_unit();
    std::size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (cdf_[mid] < u)
        lo = mid + 1;
      else
        hi = mid;
    }
    return static_cast<std::int64_t>(lo);
  }

  [[nodiscard]] std::size_t keyspace() const { return cdf_.size(); }

 private:
  SplitMix64 rng_;
  std::vector<double> cdf_;
};

}  // namespace pdc::mp
