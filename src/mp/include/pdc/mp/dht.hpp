#pragma once
// Bulk-synchronous distributed hash table (the paper's CS44 "distributed
// hash tables" topic): keys are hash-partitioned across ranks; every rank
// submits a batch of puts/gets per round, batches are routed with one
// all-to-all, owners apply/answer, and a second all-to-all returns the
// get results. The BSP batching makes the protocol deadlock-free on top
// of plain collectives — the same structure as a distributed join's
// exchange phase.
//
// Reliable mode routes both all-to-alls over the communicator's reliable
// channel: every request batch is sequence-numbered per flow, acked, and
// retransmitted with exponential backoff on loss; replayed batches are
// suppressed at the transport, and each round additionally carries a
// round number so an owner can prove it applies every batch exactly once
// (a replayed or skipped round throws instead of silently corrupting the
// shard). Under a FaultPlan, a round either completes with the fault-free
// answer or throws RankFailedError — it never hangs and never returns a
// wrong answer.

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "pdc/mp/comm.hpp"
#include "pdc/mp/fault.hpp"

namespace pdc::mp {

/// Owner rank of a key in a P-way hash partition. The key is run through
/// the splitmix64 finalizer before the modulo: libstdc++'s
/// std::hash<int64_t> is the identity, so hashing raw keys routes
/// sequential and strided workloads onto a handful of shards (a stride
/// that shares a factor with P lands every key on the same rank). The
/// bit-mix makes placement uniform for any key structure; both the BSP
/// map and the pipelined client route through this one function, so they
/// always agree on ownership.
[[nodiscard]] inline int shard_owner(std::int64_t key, int ranks) {
  return static_cast<int>(detail::mix64(static_cast<std::uint64_t>(key)) %
                          static_cast<std::uint64_t>(ranks));
}

/// Result of one get, in queue/submission order.
struct GetResult {
  std::int64_t key = 0;
  bool found = false;
  std::int64_t value = 0;
  bool operator==(const GetResult&) const = default;
};

/// Per-rank shard of the table. Construct one inside the SPMD body; all
/// ranks must call round() collectively (same number of times).
class BspHashMap {
 public:
  struct Options {
    /// Route rounds over the reliable channel (seq/ack/retry + dead-rank
    /// detection), regardless of the context's current channel mode.
    bool reliable = false;
  };

  explicit BspHashMap(RankContext& ctx) : BspHashMap(ctx, Options{}) {}
  BspHashMap(RankContext& ctx, Options opts)
      : ctx_(&ctx),
        opts_(opts),
        peer_round_(static_cast<std::size_t>(ctx.size()), 0) {}

  /// Queue a put for the next round (applied at the owner).
  void queue_put(std::int64_t key, std::int64_t value);

  /// Queue a get for the next round; the result arrives after round().
  void queue_get(std::int64_t key);

  /// Result of one get, in queue order (alias kept for existing callers).
  using GetResult = pdc::mp::GetResult;

  /// Execute one synchronous round: route queued puts and gets to their
  /// owner ranks, apply puts (last-writer-wins within a round is resolved
  /// by source rank order), answer gets. Returns this rank's get results
  /// in the order queue_get was called. COLLECTIVE: every rank must call.
  std::vector<GetResult> round();

  /// Owner rank of a key.
  [[nodiscard]] int owner(std::int64_t key) const;

  /// Number of keys stored in this rank's shard.
  [[nodiscard]] std::size_t local_size() const { return shard_.size(); }

 private:
  RankContext* ctx_;
  Options opts_;
  std::unordered_map<std::int64_t, std::int64_t> shard_;
  std::vector<std::pair<std::int64_t, std::int64_t>> pending_puts_;
  std::vector<std::int64_t> pending_gets_;
  std::int64_t round_ = 0;            ///< rounds this rank has issued
  std::vector<std::int64_t> peer_round_;  ///< last round applied per source
};

}  // namespace pdc::mp
