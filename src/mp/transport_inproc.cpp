#include <cstring>
#include <stdexcept>

#include "pdc/mp/transport.hpp"

namespace pdc::mp {

const char* to_string(TransportKind k) {
  switch (k) {
    case TransportKind::kInproc: return "inproc";
    case TransportKind::kShm: return "shm";
    case TransportKind::kTcp: return "tcp";
  }
  throw std::logic_error("unreachable");
}

TransportKind transport_kind_from_string(const std::string& s) {
  if (s == "inproc") return TransportKind::kInproc;
  if (s == "shm") return TransportKind::kShm;
  if (s == "tcp") return TransportKind::kTcp;
  throw std::invalid_argument("unknown transport \"" + s +
                              "\" (want inproc, shm, or tcp)");
}

std::unique_ptr<Transport> make_transport(const TransportOptions& opt) {
  switch (opt.kind) {
    case TransportKind::kInproc: return make_inproc_transport(opt.world);
    case TransportKind::kShm: return make_shm_transport(opt);
    case TransportKind::kTcp: return make_tcp_transport(opt);
  }
  throw std::logic_error("unreachable");
}

namespace {

/// All ranks are threads of this process: a "send" is a synchronous call
/// into the sink on the sending rank's thread. The seed behavior, byte
/// for byte — no queueing, no progress thread, and no liveness machinery
/// (rank threads mark their own terminal state in CommState directly, so
/// announce/close are no-ops).
class InprocTransport final : public Transport {
 public:
  explicit InprocTransport(int world) : world_(world) {}

  [[nodiscard]] const char* name() const override { return "inproc"; }
  [[nodiscard]] bool cross_process() const override { return false; }
  [[nodiscard]] int local_rank() const override { return -1; }

  void start(Sink* sink) override { sink_ = sink; }

  void send(Frame&& f) override {
    if (f.dst < 0 || f.dst >= world_)
      throw std::out_of_range("bad destination");
    sink_->deliver(std::move(f));
  }

  void flush() override {}
  void announce(int /*state*/) override {}
  void close(std::chrono::milliseconds /*linger*/) override {}

 private:
  int world_;
  Sink* sink_ = nullptr;
};

}  // namespace

std::unique_ptr<Transport> make_inproc_transport(int world) {
  return std::make_unique<InprocTransport>(world);
}

// ------------------------------------------------------------------ wire ---

namespace wire {

namespace {
template <class T>
void put(std::vector<std::uint8_t>& out, T v) {
  const auto n = out.size();
  out.resize(n + sizeof(T));
  std::memcpy(out.data() + n, &v, sizeof(T));
}

template <class T>
[[nodiscard]] T get(const std::uint8_t* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}
}  // namespace

void encode_frame(const Frame& f, std::vector<std::uint8_t>& out) {
  const std::size_t total = frame_bytes(f);
  out.reserve(out.size() + total);
  put<std::uint32_t>(out, static_cast<std::uint32_t>(total));
  put<std::uint32_t>(out, static_cast<std::uint32_t>(f.type));
  put<std::int32_t>(out, f.src);
  put<std::int32_t>(out, f.dst);
  put<std::int32_t>(out, f.tag);
  put<std::uint32_t>(out, f.flags);
  put<std::int32_t>(out, f.delay);
  put<std::uint32_t>(out, 0);  // pad: 8-align seq and the payload
  put<std::uint64_t>(out, f.seq);
  put<std::uint64_t>(out, static_cast<std::uint64_t>(f.payload.size()));
  if (!f.payload.empty()) {
    const auto n = out.size();
    out.resize(n + 8 * f.payload.size());
    std::memcpy(out.data() + n, f.payload.data(), 8 * f.payload.size());
  }
}

std::size_t decode_frame(const std::uint8_t* p, std::size_t n, Frame& out) {
  if (n < kFrameHeaderBytes) return 0;
  const auto total = get<std::uint32_t>(p);
  if (total < kFrameHeaderBytes || (total - kFrameHeaderBytes) % 8 != 0)
    throw std::runtime_error("malformed frame: bad length " +
                             std::to_string(total));
  const auto type = get<std::uint32_t>(p + 4);
  if (type < Frame::kData || type > Frame::kFin)
    throw std::runtime_error("malformed frame: bad type " +
                             std::to_string(type));
  if (n < total) return 0;
  out.type = static_cast<Frame::Type>(type);
  out.src = get<std::int32_t>(p + 8);
  out.dst = get<std::int32_t>(p + 12);
  out.tag = get<std::int32_t>(p + 16);
  out.flags = get<std::uint32_t>(p + 20);
  out.delay = get<std::int32_t>(p + 24);
  out.seq = get<std::uint64_t>(p + 32);
  const auto words = get<std::uint64_t>(p + 40);
  if (kFrameHeaderBytes + 8 * words != total)
    throw std::runtime_error("malformed frame: payload/length mismatch");
  out.payload.resize(words);
  if (words != 0)
    std::memcpy(out.payload.data(), p + kFrameHeaderBytes, 8 * words);
  return total;
}

}  // namespace wire

}  // namespace pdc::mp
