#include "pdc/mp/fault.hpp"

#include <cstdio>

namespace pdc::mp {

std::string FaultPlan::describe() const {
  char buf[192];
  char kill[32];
  if (kill_rank >= 0) {
    std::snprintf(kill, sizeof(kill), "%d@%d", kill_rank, kill_after_ops);
  } else {
    std::snprintf(kill, sizeof(kill), "none");
  }
  std::snprintf(buf, sizeof(buf),
                "FaultPlan{drop=%.3f,dup=%.3f,reorder=%d,delay_prob=%.2f,"
                "max_delay=%d,jitter=%d,kill=%s,seed=%llu}",
                drop, dup, reorder ? 1 : 0, delay_prob, max_delay,
                jitter ? 1 : 0, kill,
                static_cast<unsigned long long>(seed));
  return buf;
}

}  // namespace pdc::mp
