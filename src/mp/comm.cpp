#include "pdc/mp/comm.hpp"

#include <algorithm>
#include <exception>
#include <stdexcept>
#include <thread>

namespace pdc::mp {

std::int64_t apply(ReduceOp op, std::int64_t a, std::int64_t b) {
  switch (op) {
    case ReduceOp::kSum: return a + b;
    case ReduceOp::kProd: return a * b;
    case ReduceOp::kMin: return std::min(a, b);
    case ReduceOp::kMax: return std::max(a, b);
  }
  throw std::logic_error("unreachable");
}

std::int64_t identity(ReduceOp op) {
  switch (op) {
    case ReduceOp::kSum: return 0;
    case ReduceOp::kProd: return 1;
    case ReduceOp::kMin: return std::numeric_limits<std::int64_t>::max();
    case ReduceOp::kMax: return std::numeric_limits<std::int64_t>::min();
  }
  throw std::logic_error("unreachable");
}

// ------------------------------------------------------------ communicator ---

Communicator::Communicator(int size) : size_(size) {
  if (size_ < 1) throw std::invalid_argument("communicator size must be >= 1");
  mailboxes_.reserve(static_cast<std::size_t>(size_));
  for (int i = 0; i < size_; ++i)
    mailboxes_.push_back(std::make_unique<Mailbox>());
}

void Communicator::deliver(int dest, Message msg) {
  if (dest < 0 || dest >= size_) throw std::out_of_range("bad destination");
  {
    std::lock_guard lk(traffic_m_);
    ++traffic_.messages;
    traffic_.payload_words += msg.data.size();
  }
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(dest)];
  {
    std::lock_guard lk(box.m);
    box.queue.push_back(std::move(msg));
  }
  box.cv.notify_all();
}

namespace {
bool matches(const Message& m, int source, int tag) {
  return (source == kAnySource || m.source == source) &&
         (tag == kAnyTag || m.tag == tag);
}
}  // namespace

bool Communicator::match_available(int rank, int source, int tag) {
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(rank)];
  std::lock_guard lk(box.m);
  for (const auto& m : box.queue)
    if (matches(m, source, tag)) return true;
  return false;
}

Message Communicator::take(int rank, int source, int tag) {
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(rank)];
  std::unique_lock lk(box.m);
  while (true) {
    for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
      if (matches(*it, source, tag)) {
        Message m = std::move(*it);
        box.queue.erase(it);
        return m;
      }
    }
    box.cv.wait(lk);
  }
}

TrafficStats Communicator::traffic() const {
  std::lock_guard lk(traffic_m_);
  return traffic_;
}

void Communicator::reset_traffic() {
  std::lock_guard lk(traffic_m_);
  traffic_ = {};
}

void Communicator::run(const std::function<void(RankContext&)>& body) {
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(size_));
  if (size_ == 1) {
    RankContext ctx(this, 0);
    body(ctx);
    return;
  }
  {
    std::vector<std::jthread> threads;
    threads.reserve(static_cast<std::size_t>(size_));
    for (int r = 0; r < size_; ++r) {
      threads.emplace_back([&, r] {
        try {
          RankContext ctx(this, r);
          body(ctx);
        } catch (...) {
          errors[static_cast<std::size_t>(r)] = std::current_exception();
        }
      });
    }
  }
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);
}

// ---------------------------------------------------------------- request ---

bool Request::test() { return comm_->match_available(rank_, source_, tag_); }

Message Request::wait() { return comm_->take(rank_, source_, tag_); }

// ------------------------------------------------------------ rank context ---

int RankContext::size() const { return comm_->size(); }

void RankContext::send(int dest, int tag, std::vector<std::int64_t> data) {
  if (tag < 0) throw std::invalid_argument("user tags must be >= 0");
  Message m;
  m.source = rank_;
  m.tag = tag;
  m.data = std::move(data);
  comm_->deliver(dest, std::move(m));
}

void RankContext::send_value(int dest, int tag, std::int64_t value) {
  send(dest, tag, {value});
}

Message RankContext::recv(int source, int tag) {
  return comm_->take(rank_, source, tag);
}

std::int64_t RankContext::recv_value(int source, int tag) {
  const Message m = recv(source, tag);
  if (m.data.size() != 1)
    throw std::runtime_error("recv_value: message is not a single value");
  return m.data[0];
}

bool RankContext::probe(int source, int tag) {
  return comm_->match_available(rank_, source, tag);
}

Request RankContext::irecv(int source, int tag) {
  return Request(comm_, rank_, source, tag);
}

int RankContext::next_collective_tag() {
  // Reserved negative tag space; -1 is never produced (kAnyTag).
  return -2 - (collective_seq_++);
}

void RankContext::raw_send(int dest, int tag,
                           std::vector<std::int64_t> data) {
  Message m;
  m.source = rank_;
  m.tag = tag;
  m.data = std::move(data);
  comm_->deliver(dest, std::move(m));
}

void RankContext::barrier() {
  // Tree reduce of a token, then tree broadcast of the release.
  const int up_tag = next_collective_tag();
  const int down_tag = next_collective_tag();
  const int p = size();
  if (p == 1) return;

  // Reduce phase toward rank 0 (binomial).
  int mask = 1;
  while (mask < p) {
    if ((rank_ & mask) == 0) {
      const int partner = rank_ | mask;
      if (partner < p) (void)comm_->take(rank_, partner, up_tag);
    } else {
      raw_send(rank_ & ~mask, up_tag, {});
      break;
    }
    mask <<= 1;
  }
  // Broadcast release from rank 0.
  mask = 1;
  while (mask < p) {
    if (rank_ & mask) {
      (void)comm_->take(rank_, rank_ - mask, down_tag);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (rank_ + mask < p && (rank_ & (mask - 1)) == 0 &&
        (rank_ & mask) == 0) {
      raw_send(rank_ + mask, down_tag, {});
    }
    mask >>= 1;
  }
}

std::vector<std::int64_t> RankContext::broadcast(int root,
                                                 std::vector<std::int64_t> data,
                                                 CollectiveAlgo algo) {
  const int tag = next_collective_tag();
  const int p = size();
  if (root < 0 || root >= p) throw std::out_of_range("bad root");
  if (p == 1) return data;

  if (algo == CollectiveAlgo::kFlat) {
    if (rank_ == root) {
      for (int r = 0; r < p; ++r)
        if (r != root) raw_send(r, tag, data);
      return data;
    }
    return comm_->take(rank_, root, tag).data;
  }

  // Binomial tree (MPICH-style).
  const int relative = (rank_ - root + p) % p;
  int mask = 1;
  while (mask < p) {
    if (relative & mask) {
      const int src = (rank_ - mask + p) % p;
      data = comm_->take(rank_, src, tag).data;
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (relative + mask < p) {
      const int dst = (rank_ + mask) % p;
      raw_send(dst, tag, data);
    }
    mask >>= 1;
  }
  return data;
}

std::int64_t RankContext::broadcast_value(int root, std::int64_t value,
                                          CollectiveAlgo algo) {
  const auto v = broadcast(root, {value}, algo);
  return v.at(0);
}

std::int64_t RankContext::reduce(int root, std::int64_t value, ReduceOp op,
                                 CollectiveAlgo algo) {
  const int tag = next_collective_tag();
  const int p = size();
  if (root < 0 || root >= p) throw std::out_of_range("bad root");
  if (p == 1) return value;

  if (algo == CollectiveAlgo::kFlat) {
    if (rank_ == root) {
      std::int64_t acc = value;
      for (int i = 0; i < p - 1; ++i) {
        const Message m = comm_->take(rank_, kAnySource, tag);
        acc = apply(op, acc, m.data.at(0));
      }
      return acc;
    }
    raw_send(root, tag, {value});
    return identity(op);
  }

  // Binomial tree toward root.
  const int relative = (rank_ - root + p) % p;
  std::int64_t acc = value;
  int mask = 1;
  while (mask < p) {
    if ((relative & mask) == 0) {
      const int partner_rel = relative | mask;
      if (partner_rel < p) {
        const int src = (partner_rel + root) % p;
        const Message m = comm_->take(rank_, src, tag);
        acc = apply(op, acc, m.data.at(0));
      }
    } else {
      const int dst = ((relative & ~mask) + root) % p;
      raw_send(dst, tag, {acc});
      return identity(op);
    }
    mask <<= 1;
  }
  return acc;  // root
}

std::int64_t RankContext::allreduce(std::int64_t value, ReduceOp op) {
  const std::int64_t total = reduce(0, value, op);
  return broadcast_value(0, rank_ == 0 ? total : 0);
}

std::vector<std::int64_t> RankContext::gather(int root, std::int64_t value) {
  const int tag = next_collective_tag();
  const int p = size();
  if (root < 0 || root >= p) throw std::out_of_range("bad root");
  if (rank_ != root) {
    raw_send(root, tag, {value});
    return {};
  }
  std::vector<std::int64_t> out(static_cast<std::size_t>(p));
  out[static_cast<std::size_t>(rank_)] = value;
  for (int r = 0; r < p; ++r) {
    if (r == root) continue;
    out[static_cast<std::size_t>(r)] =
        comm_->take(rank_, r, tag).data.at(0);
  }
  return out;
}

std::int64_t RankContext::scatter(int root,
                                  const std::vector<std::int64_t>& values) {
  const int tag = next_collective_tag();
  const int p = size();
  if (root < 0 || root >= p) throw std::out_of_range("bad root");
  if (rank_ == root) {
    if (values.size() != static_cast<std::size_t>(p))
      throw std::invalid_argument("scatter needs exactly P values at root");
    for (int r = 0; r < p; ++r)
      if (r != root)
        raw_send(r, tag,
                 {values[static_cast<std::size_t>(r)]});
    return values[static_cast<std::size_t>(rank_)];
  }
  return comm_->take(rank_, root, tag).data.at(0);
}

std::vector<std::int64_t> RankContext::allgather(std::int64_t value) {
  std::vector<std::int64_t> all = gather(0, value);
  if (rank_ != 0) all.assign(static_cast<std::size_t>(size()), 0);
  return broadcast(0, std::move(all));
}

std::vector<std::vector<std::int64_t>> RankContext::alltoall(
    std::vector<std::vector<std::int64_t>> outgoing) {
  const int tag = next_collective_tag();
  const int p = size();
  if (outgoing.size() != static_cast<std::size_t>(p))
    throw std::invalid_argument("alltoall needs exactly P outgoing buffers");
  // Buffered sends: post everything, then collect per-source.
  for (int d = 0; d < p; ++d) {
    if (d == rank_) continue;
    raw_send(d, tag, std::move(outgoing[static_cast<std::size_t>(d)]));
  }
  std::vector<std::vector<std::int64_t>> incoming(
      static_cast<std::size_t>(p));
  incoming[static_cast<std::size_t>(rank_)] =
      std::move(outgoing[static_cast<std::size_t>(rank_)]);
  for (int s = 0; s < p; ++s) {
    if (s == rank_) continue;
    incoming[static_cast<std::size_t>(s)] =
        comm_->take(rank_, s, tag).data;
  }
  return incoming;
}

std::vector<std::int64_t> RankContext::sendrecv(
    int dest, std::vector<std::int64_t> data, int source) {
  const int tag = next_collective_tag();
  raw_send(dest, tag, std::move(data));
  return comm_->take(rank_, source, tag).data;
}

std::int64_t RankContext::exscan(std::int64_t value, ReduceOp op) {
  const int tag = next_collective_tag();
  const int p = size();
  std::int64_t prefix = identity(op);
  if (rank_ > 0) prefix = comm_->take(rank_, rank_ - 1, tag).data.at(0);
  if (rank_ + 1 < p)
    raw_send(rank_ + 1, tag, {apply(op, prefix, value)});
  return prefix;
}

}  // namespace pdc::mp
