#include "pdc/mp/comm.hpp"

#include <csignal>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <limits>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "pdc/obs/obs.hpp"

namespace pdc::mp {

std::int64_t apply(ReduceOp op, std::int64_t a, std::int64_t b) {
  switch (op) {
    case ReduceOp::kSum: return a + b;
    case ReduceOp::kProd: return a * b;
    case ReduceOp::kMin: return std::min(a, b);
    case ReduceOp::kMax: return std::max(a, b);
  }
  throw std::logic_error("unreachable");
}

std::int64_t identity(ReduceOp op) {
  switch (op) {
    case ReduceOp::kSum: return 0;
    case ReduceOp::kProd: return 1;
    case ReduceOp::kMin: return std::numeric_limits<std::int64_t>::max();
    case ReduceOp::kMax: return std::numeric_limits<std::int64_t>::min();
  }
  throw std::logic_error("unreachable");
}

// ------------------------------------------------------------ shared state ---

namespace detail {

namespace {
bool matches(const Message& m, int source, int tag) {
  return (source == kAnySource || m.source == source) &&
         (tag == kAnyTag || m.tag == tag);
}

/// TrafficStats fields, indexable so one bump lands in both the
/// per-communicator counter and the process-global "mp.*" registry metric.
enum TrafficField : std::size_t {
  kFMessages = 0,
  kFPayloadWords,
  kFAcks,
  kFRetries,
  kFDropped,
  kFDuplicates,
  kFDelayed,
  kFieldCount,
};

obs::Counter& global_traffic(std::size_t f) {
  static obs::Counter* const g[kFieldCount] = {
      &obs::counter("mp.messages"),   &obs::counter("mp.payload_words"),
      &obs::counter("mp.acks"),       &obs::counter("mp.retries"),
      &obs::counter("mp.dropped"),    &obs::counter("mp.duplicates"),
      &obs::counter("mp.delayed")};
  return *g[f];
}

obs::Histogram& payload_histogram() {
  static obs::Histogram& h = obs::histogram("mp.payload_size_words");
  return h;
}
}  // namespace

/// What a rank thread is doing. Anything but kRunning means "this rank
/// will never send another message" — blocked receivers use that to turn
/// a guaranteed hang into RankFailedError.
enum RankState : int { kRunning = 0, kFinished, kKilled, kErrored };
static_assert(kRunning == rankstate::kRunning && kFinished == rankstate::kFinished &&
              kKilled == rankstate::kKilled && kErrored == rankstate::kErrored);

struct Mailbox {
  std::mutex m;
  std::condition_variable cv;
  std::deque<Message> queue;
  std::uint64_t arrivals = 0;  ///< messages ever enqueued (monotonic)

  // Reliable-channel state, all under `m`. Reset per run.
  std::unordered_map<int, std::uint64_t> last_seq;  ///< per-source dedup floor
  std::unordered_map<int, std::uint64_t> acked;     ///< per-peer max acked seq
  struct Limbo {
    Message msg;
    std::uint64_t seq = 0;
    int countdown = 0;  ///< deliveries left before this one is released
  };
  std::vector<Limbo> limbo;
};

struct CommState : public Transport::Sink {
  explicit CommState(int n)
      : size(n),
        boxes(static_cast<std::size_t>(n)),
        rank_state(
            std::make_unique<std::atomic<int>[]>(static_cast<std::size_t>(n))),
        flow_attempt(std::make_unique<std::atomic<std::uint64_t>[]>(
            static_cast<std::size_t>(n) * static_cast<std::size_t>(n))) {
    for (auto& b : boxes) b = std::make_unique<Mailbox>();
    reset_run_state();
  }

  int size;
  FaultPlan plan;
  RetryPolicy retry;
  /// The frame mover below this protocol state. Owned by the
  /// Communicator; always outlives the state's use of it.
  Transport* transport = nullptr;
  std::vector<std::unique_ptr<Mailbox>> boxes;
  std::unique_ptr<std::atomic<int>[]> rank_state;
  /// Per ordered (src,dst) pair: delivery attempts so far. Each attempt
  /// draws fresh fault decisions, so retransmits are not doomed to repeat
  /// their predecessor's fate.
  std::unique_ptr<std::atomic<std::uint64_t>[]> flow_attempt;
  /// Per-communicator traffic counters, one per TrafficStats field —
  /// sharded and lock-free, so the old traffic mutex is gone from the
  /// delivery hot path. TrafficStats is the snapshot view over these.
  obs::Counter traffic_c[kFieldCount];

  void reset_run_state() {
    for (int i = 0; i < size; ++i) rank_state[i].store(kRunning);
    const auto n2 = static_cast<std::size_t>(size) * static_cast<std::size_t>(size);
    for (std::size_t i = 0; i < n2; ++i) flow_attempt[i].store(0);
    for (auto& b : boxes) {
      std::lock_guard lk(b->m);
      b->last_seq.clear();
      b->acked.clear();
      b->limbo.clear();
    }
  }

  /// Record that rank r stopped running and wake every blocked receiver
  /// so it can re-evaluate (lock/unlock each mailbox so no waiter misses
  /// the state change between its predicate check and its wait).
  void mark(int r, RankState s) {
    rank_state[r].store(s);
    for (auto& b : boxes) {
      { std::lock_guard lk(b->m); }
      b->cv.notify_all();
    }
  }

  [[nodiscard]] const char* state_name(int r) const {
    switch (rank_state[r].load()) {
      case kFinished: return "finished";
      case kKilled: return "was killed by the fault plan";
      case kErrored: return "exited with an error";
      default: return "is running";
    }
  }

  void count(TrafficField field, std::uint64_t n = 1) {
    traffic_c[field].add(n);
    global_traffic(field).add(n);
  }

  [[nodiscard]] TrafficStats traffic_snapshot() const {
    TrafficStats t;
    t.messages = traffic_c[kFMessages].value();
    t.payload_words = traffic_c[kFPayloadWords].value();
    t.acks = traffic_c[kFAcks].value();
    t.retries = traffic_c[kFRetries].value();
    t.dropped = traffic_c[kFDropped].value();
    t.duplicates = traffic_c[kFDuplicates].value();
    t.delayed = traffic_c[kFDelayed].value();
    return t;
  }

  void reset_traffic() {
    for (auto& c : traffic_c) c.reset();
  }

  /// A data message landed in a mailbox: count it on both channels' shared
  /// ledger and feed the payload-size histogram.
  void count_delivery(std::size_t words) {
    count(kFMessages);
    count(kFPayloadWords, words);
    payload_histogram().record(words);
  }

  // ---- incoming frames (Transport::Sink) ----

  /// A frame addressed to a local rank. On the in-process backend this
  /// runs synchronously on the sending rank's thread; on the process
  /// backends it runs on the transport's progress thread.
  void deliver(Frame&& f) override {
    switch (f.type) {
      case Frame::kData:
        deliver_plain(f.dst, Message{f.src, f.tag, std::move(f.payload)});
        return;
      case Frame::kRData:
        accept_reliable(std::move(f));
        return;
      case Frame::kAck:
        accept_ack(f);
        return;
      case Frame::kFin:
        peer_stopped(f.src, static_cast<int>(f.seq));
        return;
    }
    throw std::runtime_error("unknown frame type");
  }

  /// Liveness event from the transport: a remote peer finished, errored,
  /// or vanished (SIGKILL). Wakes every blocked receiver, exactly like a
  /// local rank thread ending does.
  void peer_stopped(int rank, int state) override {
    if (rank < 0 || rank >= size) return;
    mark(rank, static_cast<RankState>(state));
  }

  // ---- plain channel (the seed behavior, byte for byte) ----

  void deliver_plain(int dest, Message msg) {
    if (dest < 0 || dest >= size) throw std::out_of_range("bad destination");
    count_delivery(msg.data.size());
    Mailbox& box = *boxes[static_cast<std::size_t>(dest)];
    {
      std::lock_guard lk(box.m);
      box.queue.push_back(std::move(msg));
      ++box.arrivals;
    }
    box.cv.notify_all();
  }

  // ---- reliable channel ----

  /// Enqueue a sequenced message unless it is a replay. Returns true if
  /// the sender should be (re-)acked — always, except that the caller
  /// already holds box.m so acks are collected and sent after unlock.
  bool enqueue_if_new(Mailbox& box, Message msg, std::uint64_t seq) {
    auto& floor = box.last_seq[msg.source];
    if (seq <= floor) {
      count(kFDuplicates);
      return true;  // replay: suppress, but re-ack so the sender stops
    }
    floor = seq;
    count_delivery(msg.data.size());
    box.queue.push_back(std::move(msg));
    ++box.arrivals;
    return true;
  }

  /// Transport ack: receiver `from` tells sender `to` that `seq` landed.
  /// The ack-drop decision is made here (the receiver owns the reverse
  /// flow's attempt counter); the surviving ack then travels the real
  /// transport back to the sender — a dropped ack forces a retransmit,
  /// which the receiver's dedup then suppresses.
  void send_ack(int from, int to, std::uint64_t seq) {
    const auto a =
        flow_attempt[static_cast<std::size_t>(from) *
                         static_cast<std::size_t>(size) +
                     static_cast<std::size_t>(to)]
            .fetch_add(1);
    if (chance(plan.drop, fault_hash(plan.seed, kSaltAckDrop,
                                     static_cast<std::uint64_t>(from),
                                     static_cast<std::uint64_t>(to), a))) {
      count(kFDropped);
      return;
    }
    Frame ack;
    ack.type = Frame::kAck;
    ack.src = from;
    ack.dst = to;
    ack.seq = seq;
    transport->send(std::move(ack));
  }

  /// An ack landed at its sender: raise the per-peer high-water mark and
  /// wake the retransmit loop waiting on it.
  void accept_ack(const Frame& f) {
    Mailbox& box = *boxes[static_cast<std::size_t>(f.dst)];
    {
      std::lock_guard lk(box.m);
      auto& high = box.acked[f.src];
      high = std::max(high, f.seq);
    }
    count(kFAcks);
    box.cv.notify_all();
  }

  /// Sender-side fault gate: one delivery attempt's drop / duplicate /
  /// delay decisions, a pure hash of (seed, flow, attempt#). Runs at the
  /// sender on every backend, so a given (seed, plan) exercises the same
  /// recovery paths whether the frame then crosses a function call, a
  /// shared-memory ring, or a socket.
  struct Gate {
    bool send = false;
    bool duplicate = false;
    int delay = 0;
  };

  [[nodiscard]] Gate reliable_gate(int src, int dest) {
    const auto s64 = static_cast<std::uint64_t>(src);
    const auto d64 = static_cast<std::uint64_t>(dest);
    const auto a = flow_attempt[static_cast<std::size_t>(src) *
                                    static_cast<std::size_t>(size) +
                                static_cast<std::size_t>(dest)]
                       .fetch_add(1);
    auto h = [&](std::uint64_t salt) {
      return fault_hash(plan.seed, salt, s64, d64, a);
    };
    Gate g;
    if (plan.jitter && (h(kSaltJitter) & 3u) == 0) std::this_thread::yield();
    const int ds = rank_state[dest].load();
    if (ds == kKilled || ds == kErrored) {
      count(kFDropped);  // host is down; message lost
      return g;
    }
    if (chance(plan.drop, h(kSaltDrop))) {
      count(kFDropped);
      return g;
    }
    g.send = true;
    g.duplicate = chance(plan.dup, h(kSaltDup));
    if (plan.reorder && plan.max_delay > 0 &&
        chance(plan.delay_prob, h(kSaltDelay))) {
      g.delay =
          1 + static_cast<int>(h(kSaltDelayN) %
                               static_cast<std::uint64_t>(plan.max_delay));
    }
    return g;
  }

  /// One reliable frame arriving at its destination mailbox. The dup and
  /// delay fault hints ride the frame, so this stays one "match event"
  /// regardless of backend: age the limbo, release anything whose
  /// countdown expired, then enqueue / hold / duplicate this delivery.
  void accept_reliable(Frame&& f) {
    if (f.dst < 0 || f.dst >= size) throw std::out_of_range("bad destination");
    const bool duplicate = (f.flags & Frame::kFlagDup) != 0;
    Mailbox& box = *boxes[static_cast<std::size_t>(f.dst)];
    // (to, seq) acks owed, sent after box.m is released (never hold two
    // mailbox locks at once).
    std::vector<std::pair<int, std::uint64_t>> acks_due;
    {
      std::lock_guard lk(box.m);
      // Retransmits keep the limbo clock ticking, so a held message can
      // never be stranded forever.
      for (auto& held : box.limbo) --held.countdown;
      for (auto it = box.limbo.begin(); it != box.limbo.end();) {
        if (it->countdown <= 0) {
          const int from = it->msg.source;
          const auto sq = it->seq;
          if (enqueue_if_new(box, std::move(it->msg), sq))
            acks_due.emplace_back(from, sq);
          it = box.limbo.erase(it);
        } else {
          ++it;
        }
      }
      Message msg{f.src, f.tag, f.payload};
      if (f.delay > 0) {
        box.limbo.push_back({std::move(msg), f.seq, f.delay});
        count(kFDelayed);
      } else if (enqueue_if_new(box, std::move(msg), f.seq)) {
        acks_due.emplace_back(f.src, f.seq);
      }
      if (duplicate) {
        // The extra copy arrives straight away; dedup eats whichever
        // copy lands second.
        if (enqueue_if_new(box, Message{f.src, f.tag, std::move(f.payload)},
                           f.seq))
          acks_due.emplace_back(f.src, f.seq);
      }
    }
    box.cv.notify_all();
    for (const auto& [to, sq] : acks_due) send_ack(f.dst, to, sq);
  }

  [[nodiscard]] bool match_available(int rank, int source, int tag) {
    Mailbox& box = *boxes[static_cast<std::size_t>(rank)];
    std::lock_guard lk(box.m);
    for (const auto& m : box.queue)
      if (matches(m, source, tag)) return true;
    return false;
  }

  /// Blocking matched receive. Throws RankFailedError when the awaited
  /// message can provably never arrive (specific source no longer
  /// running; or any-source with every peer stopped).
  Message take(int rank, int source, int tag) {
    if (source < kAnySource || source >= size)
      throw std::out_of_range("bad source rank");
    Mailbox& box = *boxes[static_cast<std::size_t>(rank)];
    std::unique_lock lk(box.m);
    while (true) {
      for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
        if (matches(*it, source, tag)) {
          Message m = std::move(*it);
          box.queue.erase(it);
          return m;
        }
      }
      if (source != kAnySource && source != rank &&
          rank_state[source].load() != kRunning) {
        throw RankFailedError(
            source, "recv from rank " + std::to_string(source) + " (tag " +
                        std::to_string(tag) + "): rank " + state_name(source) +
                        " with no matching message");
      }
      if (source == kAnySource && size > 1) {
        int stopped = 0;
        for (int s = 0; s < size; ++s)
          if (s != rank && rank_state[s].load() != kRunning) ++stopped;
        if (stopped == size - 1)
          throw RankFailedError(
              -1, "recv from any source: every peer rank has stopped with "
                  "no matching message");
      }
      box.cv.wait(lk);
    }
  }
};

}  // namespace detail

// ------------------------------------------------------------ communicator ---

Communicator::Communicator(int size) : size_(size) {
  if (size_ < 1) throw std::invalid_argument("communicator size must be >= 1");
  st_ = std::make_shared<detail::CommState>(size_);
  transport_ = make_inproc_transport(size_);
  st_->transport = transport_.get();
  transport_->start(st_.get());
}

Communicator::Communicator(int size, FaultPlan plan) : Communicator(size) {
  st_->plan = plan;
}

Communicator::Communicator(const TransportOptions& topt) : size_(topt.world) {
  if (size_ < 1) throw std::invalid_argument("communicator size must be >= 1");
  if (topt.kind == TransportKind::kInproc) {
    st_ = std::make_shared<detail::CommState>(size_);
    transport_ = make_inproc_transport(size_);
    st_->transport = transport_.get();
    transport_->start(st_.get());
    return;
  }
  if (topt.rank < 0 || topt.rank >= topt.world)
    throw std::invalid_argument("rank must be in [0, world)");
  st_ = std::make_shared<detail::CommState>(size_);
  transport_ = make_transport(topt);
  st_->transport = transport_.get();
  local_rank_ = topt.rank;
  // start() happens in run(): every rank must reach the rendezvous, and
  // fault plans / retry policies are still settable until then.
}

void Communicator::set_fault_plan(FaultPlan plan) { st_->plan = plan; }

const FaultPlan& Communicator::fault_plan() const { return st_->plan; }

void Communicator::set_retry_policy(RetryPolicy policy) {
  st_->retry = policy;
}

const RetryPolicy& Communicator::retry_policy() const { return st_->retry; }

TrafficStats Communicator::traffic() const { return st_->traffic_snapshot(); }

void Communicator::reset_traffic() { st_->reset_traffic(); }

void Communicator::run(const std::function<void(RankContext&)>& body) {
  if (local_rank_ >= 0) {
    run_process_rank(body);
  } else {
    run_local_threads(body);
  }
}

void Communicator::run_local_threads(
    const std::function<void(RankContext&)>& body) {
  auto& st = *st_;
  st.reset_run_state();
  const auto up = static_cast<std::size_t>(size_);
  std::vector<std::exception_ptr> errors(up);
  std::vector<char> killed(up, 0);
  std::vector<char> rank_failed(up, 0);

  auto rank_main = [&](int r) {
    const auto ur = static_cast<std::size_t>(r);
    try {
      RankContext ctx(this, r);
      body(ctx);
      st.mark(r, detail::kFinished);
    } catch (const detail::RankKilledError&) {
      st.mark(r, detail::kKilled);
      killed[ur] = 1;
    } catch (const RankFailedError&) {
      errors[ur] = std::current_exception();
      rank_failed[ur] = 1;
      st.mark(r, detail::kErrored);
    } catch (...) {
      errors[ur] = std::current_exception();
      st.mark(r, detail::kErrored);
    }
  };

  if (size_ == 1) {
    rank_main(0);
  } else {
    std::vector<std::jthread> threads;
    threads.reserve(up);
    for (int r = 0; r < size_; ++r) {
      threads.emplace_back([&, r] {
        // Rank threads own their trace track: spans from rank r land on
        // the "mp/r" timeline, stable run over run.
        if (obs::tracing_enabled())
          obs::set_thread_label("mp/" + std::to_string(r));
        rank_main(r);
      });
    }
    threads.clear();  // join
  }

  // Root causes first: a logic error beats the RankFailedError cascade it
  // triggered. A fault-plan kill is reported deterministically (the set
  // of survivors that noticed can vary with timing; the kill cannot).
  for (std::size_t r = 0; r < up; ++r)
    if (errors[r] && !rank_failed[r]) std::rethrow_exception(errors[r]);
  for (std::size_t r = 0; r < up; ++r)
    if (killed[r])
      throw RankFailedError(static_cast<int>(r),
                            "rank " + std::to_string(r) +
                                " killed by fault plan " + st.plan.describe());
  for (std::size_t r = 0; r < up; ++r)
    if (errors[r]) std::rethrow_exception(errors[r]);
}

void Communicator::run_process_rank(
    const std::function<void(RankContext&)>& body) {
  auto& st = *st_;
  if (ran_)
    throw std::logic_error(
        "a cross-process Communicator supports exactly one run(): the "
        "rendezvous handshake cannot be replayed");
  ran_ = true;
  st.reset_run_state();
  // The handshake doubles as a barrier: no rank's frames can arrive
  // before every rank has reset its run state and started listening.
  transport_->start(&st);

  const int r = local_rank_;
  std::exception_ptr error;
  bool killed = false;
  bool rank_failed = false;
  try {
    RankContext ctx(this, r);
    body(ctx);
    st.mark(r, detail::kFinished);
  } catch (const detail::RankKilledError&) {
    // Unreachable on a true process backend (maybe_kill raises SIGKILL
    // there), kept for transports that report cross_process() == false.
    st.mark(r, detail::kKilled);
    killed = true;
  } catch (const RankFailedError&) {
    error = std::current_exception();
    rank_failed = true;
    st.mark(r, detail::kErrored);
  } catch (...) {
    error = std::current_exception();
    st.mark(r, detail::kErrored);
  }

  // Publish our terminal state, then wait for every peer's so all
  // processes agree on the set of outcomes before deciding what to throw.
  transport_->announce(st.rank_state[r].load());
  transport_->flush();
  transport_->close(std::chrono::milliseconds(2000));

  // Same precedence as the in-process aggregation: root-cause errors
  // first, then any killed rank (a SIGKILLed peer shows up as kKilled via
  // transport liveness — report it with the exact error the in-process
  // kill produces), then the RankFailedError cascade.
  if (error && !rank_failed) std::rethrow_exception(error);
  (void)killed;  // mark() already recorded it in rank_state
  for (int q = 0; q < size_; ++q)
    if (st.rank_state[q].load() == detail::kKilled)
      throw RankFailedError(q, "rank " + std::to_string(q) +
                                   " killed by fault plan " +
                                   st.plan.describe());
  if (error) std::rethrow_exception(error);
}

// ---------------------------------------------------------------- request ---

bool Request::test() {
  auto st = state_.lock();
  if (!st) throw std::runtime_error("Request outlived its Communicator");
  return st->match_available(rank_, source_, tag_);
}

Message Request::wait() {
  auto st = state_.lock();
  if (!st) throw std::runtime_error("Request outlived its Communicator");
  return st->take(rank_, source_, tag_);
}

// ------------------------------------------------------------ rank context ---

RankContext::RankContext(Communicator* comm, int rank)
    : comm_(comm),
      rank_(rank),
      send_seq_(static_cast<std::size_t>(comm->size()), 0) {
  // kSingle default: the thread that builds the context (the thread the
  // rank body starts on) is the one allowed to communicate.
  comm_thread_.store(std::this_thread::get_id(), std::memory_order_release);
}

void RankContext::check_comm_thread() const {
#if PDC_MP_THREAD_CHECKS
  if (std::this_thread::get_id() !=
      comm_thread_.load(std::memory_order_acquire)) {
    throw std::logic_error(
        std::string("RankContext threading violation (mode ") +
        (threading_ == Threading::kFunneled ? "kFunneled" : "kSingle") +
        "): communication from a thread that is not the designated comm "
        "thread. Multi-threaded rank bodies must funnel every comm call "
        "through the one thread that called set_threading(kFunneled).");
  }
#endif
}

int RankContext::size() const { return comm_->size(); }

const FaultPlan& RankContext::fault_plan() const { return comm_->st_->plan; }

TrafficStats RankContext::traffic() const {
  return comm_->st_->traffic_snapshot();
}

bool RankContext::cross_process() const {
  return comm_->st_->transport->cross_process();
}

const char* RankContext::transport_name() const {
  return comm_->st_->transport->name();
}

void RankContext::maybe_kill() {
  const FaultPlan& plan = comm_->st_->plan;
  if (plan.kill_rank == rank_ && ops_ > plan.kill_after_ops) {
    if (comm_->st_->transport->cross_process()) {
      // A real kill: this process vanishes mid-protocol exactly like a
      // crashed host — no goodbye frame, no unwinding. Peers find out
      // through transport liveness (pid probe / connection reset).
      ::raise(SIGKILL);
    }
    throw detail::RankKilledError{};
  }
}

void RankContext::ch_send(int dest, int tag, std::vector<std::int64_t> data) {
  PDC_TRACE_SCOPE("mp.send");
  check_comm_thread();
  ++ops_;
  maybe_kill();
  if (reliable_) {
    reliable_send(dest, tag, std::move(data));
  } else {
    if (dest < 0 || dest >= comm_->size())
      throw std::out_of_range("bad destination");
    Frame f;
    f.type = Frame::kData;
    f.src = rank_;
    f.dst = dest;
    f.tag = tag;
    f.payload = std::move(data);
    comm_->st_->transport->send(std::move(f));
  }
}

Message RankContext::ch_take(int source, int tag) {
  PDC_TRACE_SCOPE("mp.recv");
  check_comm_thread();
  ++ops_;
  maybe_kill();
  if (reliable_ && source == kAnySource)
    throw std::logic_error(
        "recv(kAnySource) is not allowed on the reliable channel: an "
        "any-source wait cannot name the sender it depends on, so a dead "
        "peer whose messages were all dropped becomes an undetectable "
        "hang. Receive per-source (or poll probe(source, tag)) instead.");
  return comm_->st_->take(rank_, source, tag);
}

bool RankContext::peer_running(int rank) const {
  if (rank < 0 || rank >= comm_->st_->size)
    throw std::out_of_range("bad peer rank");
  return comm_->st_->rank_state[rank].load() == detail::kRunning;
}

void RankContext::reliable_send(int dest, int tag,
                                std::vector<std::int64_t> data) {
  auto& st = *comm_->st_;
  if (dest < 0 || dest >= st.size) throw std::out_of_range("bad destination");
  const std::uint64_t seq = ++send_seq_[static_cast<std::size_t>(dest)];
  detail::Mailbox& mybox = *st.boxes[static_cast<std::size_t>(rank_)];
  const auto deadline = std::chrono::steady_clock::now() + st.retry.give_up;
  auto backoff = st.retry.initial_backoff;
  for (int attempt = 0;; ++attempt) {
    {
      const int ds = st.rank_state[dest].load();
      if (ds == detail::kKilled || ds == detail::kErrored)
        throw RankFailedError(dest, "send to rank " + std::to_string(dest) +
                                        ": rank " + st.state_name(dest));
    }
    if (attempt > 0) st.count(detail::kFRetries);
    {
      const auto gate = st.reliable_gate(rank_, dest);
      if (gate.send) {
        Frame f;
        f.type = Frame::kRData;
        f.src = rank_;
        f.dst = dest;
        f.tag = tag;
        f.seq = seq;
        if (gate.duplicate) f.flags |= Frame::kFlagDup;
        f.delay = gate.delay;
        f.payload = data;  // copied: retransmits reuse `data`
        st.transport->send(std::move(f));
      }
    }
    {
      std::unique_lock lk(mybox.m);
      const bool done = mybox.cv.wait_for(lk, backoff, [&] {
        const auto it = mybox.acked.find(dest);
        if (it != mybox.acked.end() && it->second >= seq) return true;
        return st.rank_state[dest].load() != detail::kRunning;
      });
      if (done) {
        const auto it = mybox.acked.find(dest);
        if (it != mybox.acked.end() && it->second >= seq) return;
        // Peer stopped before acking: a finished peer may still ack via a
        // retransmit (its mailbox outlives it), but killed/errored hosts
        // are gone for good.
        const int ds = st.rank_state[dest].load();
        if (ds == detail::kKilled || ds == detail::kErrored) {
          lk.unlock();
          throw RankFailedError(dest, "send to rank " + std::to_string(dest) +
                                          ": rank " + st.state_name(dest) +
                                          " before acking");
        }
      }
    }
    backoff = std::min(backoff * st.retry.backoff_factor, st.retry.max_backoff);
    if (std::chrono::steady_clock::now() > deadline)
      throw RankFailedError(dest, "send to rank " + std::to_string(dest) +
                                      ": no ack within retry budget (plan " +
                                      st.plan.describe() + ")");
  }
}

void RankContext::send(int dest, int tag, std::vector<std::int64_t> data) {
  if (tag < 0) throw std::invalid_argument("user tags must be >= 0");
  ch_send(dest, tag, std::move(data));
}

void RankContext::send_value(int dest, int tag, std::int64_t value) {
  send(dest, tag, {value});
}

Message RankContext::recv(int source, int tag) { return ch_take(source, tag); }

std::int64_t RankContext::recv_value(int source, int tag) {
  const Message m = recv(source, tag);
  if (m.data.size() != 1)
    throw std::runtime_error("recv_value: message is not a single value");
  return m.data[0];
}

bool RankContext::probe(int source, int tag) {
  check_comm_thread();
  return comm_->st_->match_available(rank_, source, tag);
}

std::uint64_t RankContext::arrivals() const {
  detail::Mailbox& box = *comm_->st_->boxes[static_cast<std::size_t>(rank_)];
  std::lock_guard lk(box.m);
  return box.arrivals;
}

std::uint64_t RankContext::wait_arrivals(std::uint64_t seen) {
  check_comm_thread();
  detail::Mailbox& box = *comm_->st_->boxes[static_cast<std::size_t>(rank_)];
  std::unique_lock lk(box.m);
  // Bounded wait: deliveries and rank-death marks notify the cv, but the
  // timeout keeps liveness re-checks flowing even if neither happens.
  box.cv.wait_for(lk, std::chrono::milliseconds(1),
                  [&] { return box.arrivals > seen; });
  return box.arrivals;
}

Request RankContext::irecv(int source, int tag) {
  return Request(comm_->st_, rank_, source, tag);
}

int RankContext::next_collective_tag() {
  // Reserved negative tag space; -1 is never produced (kAnyTag).
  return -2 - (collective_seq_++);
}

void RankContext::barrier() {
  PDC_TRACE_SCOPE("mp.barrier");
  // Tree reduce of a token, then tree broadcast of the release.
  const int up_tag = next_collective_tag();
  const int down_tag = next_collective_tag();
  const int p = size();
  if (p == 1) return;

  // Reduce phase toward rank 0 (binomial).
  int mask = 1;
  while (mask < p) {
    if ((rank_ & mask) == 0) {
      const int partner = rank_ | mask;
      if (partner < p) (void)ch_take(partner, up_tag);
    } else {
      ch_send(rank_ & ~mask, up_tag, {});
      break;
    }
    mask <<= 1;
  }
  // Broadcast release from rank 0.
  mask = 1;
  while (mask < p) {
    if (rank_ & mask) {
      (void)ch_take(rank_ - mask, down_tag);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (rank_ + mask < p && (rank_ & (mask - 1)) == 0 &&
        (rank_ & mask) == 0) {
      ch_send(rank_ + mask, down_tag, {});
    }
    mask >>= 1;
  }
}

std::vector<std::int64_t> RankContext::broadcast(int root,
                                                 std::vector<std::int64_t> data,
                                                 CollectiveAlgo algo) {
  PDC_TRACE_SCOPE("mp.bcast");
  const int tag = next_collective_tag();
  const int p = size();
  if (root < 0 || root >= p) throw std::out_of_range("bad root");
  if (p == 1) return data;

  if (algo == CollectiveAlgo::kFlat) {
    if (rank_ == root) {
      for (int r = 0; r < p; ++r)
        if (r != root) ch_send(r, tag, data);
      return data;
    }
    return ch_take(root, tag).data;
  }

  // Binomial tree (MPICH-style).
  const int relative = (rank_ - root + p) % p;
  int mask = 1;
  while (mask < p) {
    if (relative & mask) {
      const int src = (rank_ - mask + p) % p;
      data = ch_take(src, tag).data;
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (relative + mask < p) {
      const int dst = (rank_ + mask) % p;
      ch_send(dst, tag, data);
    }
    mask >>= 1;
  }
  return data;
}

std::int64_t RankContext::broadcast_value(int root, std::int64_t value,
                                          CollectiveAlgo algo) {
  const auto v = broadcast(root, {value}, algo);
  return v.at(0);
}

std::int64_t RankContext::reduce(int root, std::int64_t value, ReduceOp op,
                                 CollectiveAlgo algo) {
  PDC_TRACE_SCOPE("mp.reduce");
  const int tag = next_collective_tag();
  const int p = size();
  if (root < 0 || root >= p) throw std::out_of_range("bad root");
  if (p == 1) return value;

  if (algo == CollectiveAlgo::kFlat) {
    if (rank_ == root) {
      std::int64_t acc = value;
      if (reliable_) {
        // Per-source receives so a dead contributor is detected instead
        // of waiting forever on an any-source match that never comes.
        for (int r = 0; r < p; ++r) {
          if (r == root) continue;
          acc = apply(op, acc, ch_take(r, tag).data.at(0));
        }
      } else {
        for (int i = 0; i < p - 1; ++i) {
          const Message m = ch_take(kAnySource, tag);
          acc = apply(op, acc, m.data.at(0));
        }
      }
      return acc;
    }
    ch_send(root, tag, {value});
    return identity(op);
  }

  // Binomial tree toward root.
  const int relative = (rank_ - root + p) % p;
  std::int64_t acc = value;
  int mask = 1;
  while (mask < p) {
    if ((relative & mask) == 0) {
      const int partner_rel = relative | mask;
      if (partner_rel < p) {
        const int src = (partner_rel + root) % p;
        const Message m = ch_take(src, tag);
        acc = apply(op, acc, m.data.at(0));
      }
    } else {
      const int dst = ((relative & ~mask) + root) % p;
      ch_send(dst, tag, {acc});
      return identity(op);
    }
    mask <<= 1;
  }
  return acc;  // root
}

std::int64_t RankContext::allreduce(std::int64_t value, ReduceOp op) {
  PDC_TRACE_SCOPE("mp.allreduce");
  const std::int64_t total = reduce(0, value, op);
  return broadcast_value(0, rank_ == 0 ? total : 0);
}

std::vector<std::int64_t> RankContext::gather(int root, std::int64_t value) {
  PDC_TRACE_SCOPE("mp.gather");
  const int tag = next_collective_tag();
  const int p = size();
  if (root < 0 || root >= p) throw std::out_of_range("bad root");
  if (rank_ != root) {
    ch_send(root, tag, {value});
    return {};
  }
  std::vector<std::int64_t> out(static_cast<std::size_t>(p));
  out[static_cast<std::size_t>(rank_)] = value;
  for (int r = 0; r < p; ++r) {
    if (r == root) continue;
    out[static_cast<std::size_t>(r)] = ch_take(r, tag).data.at(0);
  }
  return out;
}

std::int64_t RankContext::scatter(int root,
                                  const std::vector<std::int64_t>& values) {
  PDC_TRACE_SCOPE("mp.scatter");
  const int tag = next_collective_tag();
  const int p = size();
  if (root < 0 || root >= p) throw std::out_of_range("bad root");
  if (rank_ == root) {
    if (values.size() != static_cast<std::size_t>(p))
      throw std::invalid_argument("scatter needs exactly P values at root");
    for (int r = 0; r < p; ++r)
      if (r != root)
        ch_send(r, tag, {values[static_cast<std::size_t>(r)]});
    return values[static_cast<std::size_t>(rank_)];
  }
  return ch_take(root, tag).data.at(0);
}

std::vector<std::int64_t> RankContext::allgather(std::int64_t value) {
  PDC_TRACE_SCOPE("mp.allgather");
  std::vector<std::int64_t> all = gather(0, value);
  if (rank_ != 0) all.assign(static_cast<std::size_t>(size()), 0);
  return broadcast(0, std::move(all));
}

std::vector<std::vector<std::int64_t>> RankContext::alltoall(
    std::vector<std::vector<std::int64_t>> outgoing) {
  PDC_TRACE_SCOPE("mp.alltoall");
  const int tag = next_collective_tag();
  const int p = size();
  if (outgoing.size() != static_cast<std::size_t>(p))
    throw std::invalid_argument("alltoall needs exactly P outgoing buffers");
  // Buffered sends: post everything, then collect per-source.
  for (int d = 0; d < p; ++d) {
    if (d == rank_) continue;
    ch_send(d, tag, std::move(outgoing[static_cast<std::size_t>(d)]));
  }
  std::vector<std::vector<std::int64_t>> incoming(
      static_cast<std::size_t>(p));
  incoming[static_cast<std::size_t>(rank_)] =
      std::move(outgoing[static_cast<std::size_t>(rank_)]);
  for (int s = 0; s < p; ++s) {
    if (s == rank_) continue;
    incoming[static_cast<std::size_t>(s)] = ch_take(s, tag).data;
  }
  return incoming;
}

std::vector<std::int64_t> RankContext::sendrecv(
    int dest, std::vector<std::int64_t> data, int source) {
  PDC_TRACE_SCOPE("mp.sendrecv");
  const int tag = next_collective_tag();
  ch_send(dest, tag, std::move(data));
  return ch_take(source, tag).data;
}

std::int64_t RankContext::exscan(std::int64_t value, ReduceOp op) {
  PDC_TRACE_SCOPE("mp.exscan");
  const int tag = next_collective_tag();
  const int p = size();
  std::int64_t prefix = identity(op);
  if (rank_ > 0) prefix = ch_take(rank_ - 1, tag).data.at(0);
  if (rank_ + 1 < p)
    ch_send(rank_ + 1, tag, {apply(op, prefix, value)});
  return prefix;
}

}  // namespace pdc::mp
