#include "pdc/mp/comm.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <limits>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "pdc/obs/obs.hpp"

namespace pdc::mp {

std::int64_t apply(ReduceOp op, std::int64_t a, std::int64_t b) {
  switch (op) {
    case ReduceOp::kSum: return a + b;
    case ReduceOp::kProd: return a * b;
    case ReduceOp::kMin: return std::min(a, b);
    case ReduceOp::kMax: return std::max(a, b);
  }
  throw std::logic_error("unreachable");
}

std::int64_t identity(ReduceOp op) {
  switch (op) {
    case ReduceOp::kSum: return 0;
    case ReduceOp::kProd: return 1;
    case ReduceOp::kMin: return std::numeric_limits<std::int64_t>::max();
    case ReduceOp::kMax: return std::numeric_limits<std::int64_t>::min();
  }
  throw std::logic_error("unreachable");
}

// ------------------------------------------------------------ shared state ---

namespace detail {

namespace {
bool matches(const Message& m, int source, int tag) {
  return (source == kAnySource || m.source == source) &&
         (tag == kAnyTag || m.tag == tag);
}

/// TrafficStats fields, indexable so one bump lands in both the
/// per-communicator counter and the process-global "mp.*" registry metric.
enum TrafficField : std::size_t {
  kFMessages = 0,
  kFPayloadWords,
  kFAcks,
  kFRetries,
  kFDropped,
  kFDuplicates,
  kFDelayed,
  kFieldCount,
};

obs::Counter& global_traffic(std::size_t f) {
  static obs::Counter* const g[kFieldCount] = {
      &obs::counter("mp.messages"),   &obs::counter("mp.payload_words"),
      &obs::counter("mp.acks"),       &obs::counter("mp.retries"),
      &obs::counter("mp.dropped"),    &obs::counter("mp.duplicates"),
      &obs::counter("mp.delayed")};
  return *g[f];
}

obs::Histogram& payload_histogram() {
  static obs::Histogram& h = obs::histogram("mp.payload_size_words");
  return h;
}
}  // namespace

/// What a rank thread is doing. Anything but kRunning means "this rank
/// will never send another message" — blocked receivers use that to turn
/// a guaranteed hang into RankFailedError.
enum RankState : int { kRunning = 0, kFinished, kKilled, kErrored };

struct Mailbox {
  std::mutex m;
  std::condition_variable cv;
  std::deque<Message> queue;
  std::uint64_t arrivals = 0;  ///< messages ever enqueued (monotonic)

  // Reliable-channel state, all under `m`. Reset per run.
  std::unordered_map<int, std::uint64_t> last_seq;  ///< per-source dedup floor
  std::unordered_map<int, std::uint64_t> acked;     ///< per-peer max acked seq
  struct Limbo {
    Message msg;
    std::uint64_t seq = 0;
    int countdown = 0;  ///< deliveries left before this one is released
  };
  std::vector<Limbo> limbo;
};

struct CommState {
  explicit CommState(int n)
      : size(n),
        boxes(static_cast<std::size_t>(n)),
        rank_state(
            std::make_unique<std::atomic<int>[]>(static_cast<std::size_t>(n))),
        flow_attempt(std::make_unique<std::atomic<std::uint64_t>[]>(
            static_cast<std::size_t>(n) * static_cast<std::size_t>(n))) {
    for (auto& b : boxes) b = std::make_unique<Mailbox>();
    reset_run_state();
  }

  int size;
  FaultPlan plan;
  RetryPolicy retry;
  std::vector<std::unique_ptr<Mailbox>> boxes;
  std::unique_ptr<std::atomic<int>[]> rank_state;
  /// Per ordered (src,dst) pair: delivery attempts so far. Each attempt
  /// draws fresh fault decisions, so retransmits are not doomed to repeat
  /// their predecessor's fate.
  std::unique_ptr<std::atomic<std::uint64_t>[]> flow_attempt;
  /// Per-communicator traffic counters, one per TrafficStats field —
  /// sharded and lock-free, so the old traffic mutex is gone from the
  /// delivery hot path. TrafficStats is the snapshot view over these.
  obs::Counter traffic_c[kFieldCount];

  void reset_run_state() {
    for (int i = 0; i < size; ++i) rank_state[i].store(kRunning);
    const auto n2 = static_cast<std::size_t>(size) * static_cast<std::size_t>(size);
    for (std::size_t i = 0; i < n2; ++i) flow_attempt[i].store(0);
    for (auto& b : boxes) {
      std::lock_guard lk(b->m);
      b->last_seq.clear();
      b->acked.clear();
      b->limbo.clear();
    }
  }

  /// Record that rank r stopped running and wake every blocked receiver
  /// so it can re-evaluate (lock/unlock each mailbox so no waiter misses
  /// the state change between its predicate check and its wait).
  void mark(int r, RankState s) {
    rank_state[r].store(s);
    for (auto& b : boxes) {
      { std::lock_guard lk(b->m); }
      b->cv.notify_all();
    }
  }

  [[nodiscard]] const char* state_name(int r) const {
    switch (rank_state[r].load()) {
      case kFinished: return "finished";
      case kKilled: return "was killed by the fault plan";
      case kErrored: return "exited with an error";
      default: return "is running";
    }
  }

  void count(TrafficField field, std::uint64_t n = 1) {
    traffic_c[field].add(n);
    global_traffic(field).add(n);
  }

  [[nodiscard]] TrafficStats traffic_snapshot() const {
    TrafficStats t;
    t.messages = traffic_c[kFMessages].value();
    t.payload_words = traffic_c[kFPayloadWords].value();
    t.acks = traffic_c[kFAcks].value();
    t.retries = traffic_c[kFRetries].value();
    t.dropped = traffic_c[kFDropped].value();
    t.duplicates = traffic_c[kFDuplicates].value();
    t.delayed = traffic_c[kFDelayed].value();
    return t;
  }

  void reset_traffic() {
    for (auto& c : traffic_c) c.reset();
  }

  /// A data message landed in a mailbox: count it on both channels' shared
  /// ledger and feed the payload-size histogram.
  void count_delivery(std::size_t words) {
    count(kFMessages);
    count(kFPayloadWords, words);
    payload_histogram().record(words);
  }

  // ---- plain channel (the seed behavior, byte for byte) ----

  void deliver_plain(int dest, Message msg) {
    if (dest < 0 || dest >= size) throw std::out_of_range("bad destination");
    count_delivery(msg.data.size());
    Mailbox& box = *boxes[static_cast<std::size_t>(dest)];
    {
      std::lock_guard lk(box.m);
      box.queue.push_back(std::move(msg));
      ++box.arrivals;
    }
    box.cv.notify_all();
  }

  // ---- reliable channel ----

  /// Enqueue a sequenced message unless it is a replay. Returns true if
  /// the sender should be (re-)acked — always, except that the caller
  /// already holds box.m so acks are collected and sent after unlock.
  bool enqueue_if_new(Mailbox& box, Message msg, std::uint64_t seq) {
    auto& floor = box.last_seq[msg.source];
    if (seq <= floor) {
      count(kFDuplicates);
      return true;  // replay: suppress, but re-ack so the sender stops
    }
    floor = seq;
    count_delivery(msg.data.size());
    box.queue.push_back(std::move(msg));
    ++box.arrivals;
    return true;
  }

  /// Transport ack: receiver `from` tells sender `to` that `seq` landed.
  /// Travels the same faulty medium — a dropped ack forces a retransmit,
  /// which the receiver's dedup then suppresses.
  void send_ack(int from, int to, std::uint64_t seq) {
    const auto a =
        flow_attempt[static_cast<std::size_t>(from) *
                         static_cast<std::size_t>(size) +
                     static_cast<std::size_t>(to)]
            .fetch_add(1);
    if (chance(plan.drop, fault_hash(plan.seed, kSaltAckDrop,
                                     static_cast<std::uint64_t>(from),
                                     static_cast<std::uint64_t>(to), a))) {
      count(kFDropped);
      return;
    }
    Mailbox& box = *boxes[static_cast<std::size_t>(to)];
    {
      std::lock_guard lk(box.m);
      auto& high = box.acked[from];
      high = std::max(high, seq);
    }
    count(kFAcks);
    box.cv.notify_all();
  }

  /// One delivery attempt on the reliable channel. Decides drop /
  /// duplicate / delay deterministically from (seed, flow, attempt#).
  void deliver_reliable(int src, int dest, int tag,
                        const std::vector<std::int64_t>& data,
                        std::uint64_t seq) {
    if (dest < 0 || dest >= size) throw std::out_of_range("bad destination");
    const auto s64 = static_cast<std::uint64_t>(src);
    const auto d64 = static_cast<std::uint64_t>(dest);
    const auto a = flow_attempt[static_cast<std::size_t>(src) *
                                    static_cast<std::size_t>(size) +
                                static_cast<std::size_t>(dest)]
                       .fetch_add(1);
    auto h = [&](std::uint64_t salt) {
      return fault_hash(plan.seed, salt, s64, d64, a);
    };
    if (plan.jitter && (h(kSaltJitter) & 3u) == 0) std::this_thread::yield();
    const int ds = rank_state[dest].load();
    if (ds == kKilled || ds == kErrored) {
      count(kFDropped);  // host is down; message lost
      return;
    }
    if (chance(plan.drop, h(kSaltDrop))) {
      count(kFDropped);
      return;
    }
    const bool duplicate = chance(plan.dup, h(kSaltDup));
    int delay = 0;
    if (plan.reorder && plan.max_delay > 0 &&
        chance(plan.delay_prob, h(kSaltDelay))) {
      delay = 1 + static_cast<int>(h(kSaltDelayN) %
                                   static_cast<std::uint64_t>(plan.max_delay));
    }

    Mailbox& box = *boxes[static_cast<std::size_t>(dest)];
    // (to, seq) acks owed, sent after box.m is released (never hold two
    // mailbox locks at once).
    std::vector<std::pair<int, std::uint64_t>> acks_due;
    {
      std::lock_guard lk(box.m);
      // This delivery is one "match event": age the limbo and release
      // anything whose countdown expired (retransmits keep the clock
      // ticking, so a held message can never be stranded forever).
      for (auto& held : box.limbo) --held.countdown;
      for (auto it = box.limbo.begin(); it != box.limbo.end();) {
        if (it->countdown <= 0) {
          const int from = it->msg.source;
          const auto sq = it->seq;
          if (enqueue_if_new(box, std::move(it->msg), sq))
            acks_due.emplace_back(from, sq);
          it = box.limbo.erase(it);
        } else {
          ++it;
        }
      }
      Message msg{src, tag, data};
      if (delay > 0) {
        box.limbo.push_back({std::move(msg), seq, delay});
        count(kFDelayed);
      } else if (enqueue_if_new(box, std::move(msg), seq)) {
        acks_due.emplace_back(src, seq);
      }
      if (duplicate) {
        // The extra copy arrives straight away; dedup eats whichever
        // copy lands second.
        if (enqueue_if_new(box, Message{src, tag, data}, seq))
          acks_due.emplace_back(src, seq);
      }
    }
    box.cv.notify_all();
    for (const auto& [to, sq] : acks_due) send_ack(dest, to, sq);
  }

  [[nodiscard]] bool match_available(int rank, int source, int tag) {
    Mailbox& box = *boxes[static_cast<std::size_t>(rank)];
    std::lock_guard lk(box.m);
    for (const auto& m : box.queue)
      if (matches(m, source, tag)) return true;
    return false;
  }

  /// Blocking matched receive. Throws RankFailedError when the awaited
  /// message can provably never arrive (specific source no longer
  /// running; or any-source with every peer stopped).
  Message take(int rank, int source, int tag) {
    if (source < kAnySource || source >= size)
      throw std::out_of_range("bad source rank");
    Mailbox& box = *boxes[static_cast<std::size_t>(rank)];
    std::unique_lock lk(box.m);
    while (true) {
      for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
        if (matches(*it, source, tag)) {
          Message m = std::move(*it);
          box.queue.erase(it);
          return m;
        }
      }
      if (source != kAnySource && source != rank &&
          rank_state[source].load() != kRunning) {
        throw RankFailedError(
            source, "recv from rank " + std::to_string(source) + " (tag " +
                        std::to_string(tag) + "): rank " + state_name(source) +
                        " with no matching message");
      }
      if (source == kAnySource && size > 1) {
        int stopped = 0;
        for (int s = 0; s < size; ++s)
          if (s != rank && rank_state[s].load() != kRunning) ++stopped;
        if (stopped == size - 1)
          throw RankFailedError(
              -1, "recv from any source: every peer rank has stopped with "
                  "no matching message");
      }
      box.cv.wait(lk);
    }
  }
};

}  // namespace detail

// ------------------------------------------------------------ communicator ---

Communicator::Communicator(int size) : size_(size) {
  if (size_ < 1) throw std::invalid_argument("communicator size must be >= 1");
  st_ = std::make_shared<detail::CommState>(size_);
}

Communicator::Communicator(int size, FaultPlan plan) : Communicator(size) {
  st_->plan = plan;
}

void Communicator::set_fault_plan(FaultPlan plan) { st_->plan = plan; }

const FaultPlan& Communicator::fault_plan() const { return st_->plan; }

void Communicator::set_retry_policy(RetryPolicy policy) {
  st_->retry = policy;
}

const RetryPolicy& Communicator::retry_policy() const { return st_->retry; }

TrafficStats Communicator::traffic() const { return st_->traffic_snapshot(); }

void Communicator::reset_traffic() { st_->reset_traffic(); }

void Communicator::run(const std::function<void(RankContext&)>& body) {
  auto& st = *st_;
  st.reset_run_state();
  const auto up = static_cast<std::size_t>(size_);
  std::vector<std::exception_ptr> errors(up);
  std::vector<char> killed(up, 0);
  std::vector<char> rank_failed(up, 0);

  auto rank_main = [&](int r) {
    const auto ur = static_cast<std::size_t>(r);
    try {
      RankContext ctx(this, r);
      body(ctx);
      st.mark(r, detail::kFinished);
    } catch (const detail::RankKilledError&) {
      st.mark(r, detail::kKilled);
      killed[ur] = 1;
    } catch (const RankFailedError&) {
      errors[ur] = std::current_exception();
      rank_failed[ur] = 1;
      st.mark(r, detail::kErrored);
    } catch (...) {
      errors[ur] = std::current_exception();
      st.mark(r, detail::kErrored);
    }
  };

  if (size_ == 1) {
    rank_main(0);
  } else {
    std::vector<std::jthread> threads;
    threads.reserve(up);
    for (int r = 0; r < size_; ++r) {
      threads.emplace_back([&, r] {
        // Rank threads own their trace track: spans from rank r land on
        // the "mp/r" timeline, stable run over run.
        if (obs::tracing_enabled())
          obs::set_thread_label("mp/" + std::to_string(r));
        rank_main(r);
      });
    }
    threads.clear();  // join
  }

  // Root causes first: a logic error beats the RankFailedError cascade it
  // triggered. A fault-plan kill is reported deterministically (the set
  // of survivors that noticed can vary with timing; the kill cannot).
  for (std::size_t r = 0; r < up; ++r)
    if (errors[r] && !rank_failed[r]) std::rethrow_exception(errors[r]);
  for (std::size_t r = 0; r < up; ++r)
    if (killed[r])
      throw RankFailedError(static_cast<int>(r),
                            "rank " + std::to_string(r) +
                                " killed by fault plan " + st.plan.describe());
  for (std::size_t r = 0; r < up; ++r)
    if (errors[r]) std::rethrow_exception(errors[r]);
}

// ---------------------------------------------------------------- request ---

bool Request::test() {
  auto st = state_.lock();
  if (!st) throw std::runtime_error("Request outlived its Communicator");
  return st->match_available(rank_, source_, tag_);
}

Message Request::wait() {
  auto st = state_.lock();
  if (!st) throw std::runtime_error("Request outlived its Communicator");
  return st->take(rank_, source_, tag_);
}

// ------------------------------------------------------------ rank context ---

RankContext::RankContext(Communicator* comm, int rank)
    : comm_(comm),
      rank_(rank),
      send_seq_(static_cast<std::size_t>(comm->size()), 0) {}

int RankContext::size() const { return comm_->size(); }

const FaultPlan& RankContext::fault_plan() const { return comm_->st_->plan; }

void RankContext::maybe_kill() {
  const FaultPlan& plan = comm_->st_->plan;
  if (plan.kill_rank == rank_ && ops_ > plan.kill_after_ops)
    throw detail::RankKilledError{};
}

void RankContext::ch_send(int dest, int tag, std::vector<std::int64_t> data) {
  PDC_TRACE_SCOPE("mp.send");
  ++ops_;
  maybe_kill();
  if (reliable_) {
    reliable_send(dest, tag, std::move(data));
  } else {
    Message m;
    m.source = rank_;
    m.tag = tag;
    m.data = std::move(data);
    comm_->st_->deliver_plain(dest, std::move(m));
  }
}

Message RankContext::ch_take(int source, int tag) {
  PDC_TRACE_SCOPE("mp.recv");
  ++ops_;
  maybe_kill();
  if (reliable_ && source == kAnySource)
    throw std::logic_error(
        "recv(kAnySource) is not allowed on the reliable channel: an "
        "any-source wait cannot name the sender it depends on, so a dead "
        "peer whose messages were all dropped becomes an undetectable "
        "hang. Receive per-source (or poll probe(source, tag)) instead.");
  return comm_->st_->take(rank_, source, tag);
}

bool RankContext::peer_running(int rank) const {
  if (rank < 0 || rank >= comm_->st_->size)
    throw std::out_of_range("bad peer rank");
  return comm_->st_->rank_state[rank].load() == detail::kRunning;
}

void RankContext::reliable_send(int dest, int tag,
                                std::vector<std::int64_t> data) {
  auto& st = *comm_->st_;
  if (dest < 0 || dest >= st.size) throw std::out_of_range("bad destination");
  const std::uint64_t seq = ++send_seq_[static_cast<std::size_t>(dest)];
  detail::Mailbox& mybox = *st.boxes[static_cast<std::size_t>(rank_)];
  const auto deadline = std::chrono::steady_clock::now() + st.retry.give_up;
  auto backoff = st.retry.initial_backoff;
  for (int attempt = 0;; ++attempt) {
    {
      const int ds = st.rank_state[dest].load();
      if (ds == detail::kKilled || ds == detail::kErrored)
        throw RankFailedError(dest, "send to rank " + std::to_string(dest) +
                                        ": rank " + st.state_name(dest));
    }
    if (attempt > 0) st.count(detail::kFRetries);
    st.deliver_reliable(rank_, dest, tag, data, seq);
    {
      std::unique_lock lk(mybox.m);
      const bool done = mybox.cv.wait_for(lk, backoff, [&] {
        const auto it = mybox.acked.find(dest);
        if (it != mybox.acked.end() && it->second >= seq) return true;
        return st.rank_state[dest].load() != detail::kRunning;
      });
      if (done) {
        const auto it = mybox.acked.find(dest);
        if (it != mybox.acked.end() && it->second >= seq) return;
        // Peer stopped before acking: a finished peer may still ack via a
        // retransmit (its mailbox outlives it), but killed/errored hosts
        // are gone for good.
        const int ds = st.rank_state[dest].load();
        if (ds == detail::kKilled || ds == detail::kErrored) {
          lk.unlock();
          throw RankFailedError(dest, "send to rank " + std::to_string(dest) +
                                          ": rank " + st.state_name(dest) +
                                          " before acking");
        }
      }
    }
    backoff = std::min(backoff * st.retry.backoff_factor, st.retry.max_backoff);
    if (std::chrono::steady_clock::now() > deadline)
      throw RankFailedError(dest, "send to rank " + std::to_string(dest) +
                                      ": no ack within retry budget (plan " +
                                      st.plan.describe() + ")");
  }
}

void RankContext::send(int dest, int tag, std::vector<std::int64_t> data) {
  if (tag < 0) throw std::invalid_argument("user tags must be >= 0");
  ch_send(dest, tag, std::move(data));
}

void RankContext::send_value(int dest, int tag, std::int64_t value) {
  send(dest, tag, {value});
}

Message RankContext::recv(int source, int tag) { return ch_take(source, tag); }

std::int64_t RankContext::recv_value(int source, int tag) {
  const Message m = recv(source, tag);
  if (m.data.size() != 1)
    throw std::runtime_error("recv_value: message is not a single value");
  return m.data[0];
}

bool RankContext::probe(int source, int tag) {
  return comm_->st_->match_available(rank_, source, tag);
}

std::uint64_t RankContext::arrivals() const {
  detail::Mailbox& box = *comm_->st_->boxes[static_cast<std::size_t>(rank_)];
  std::lock_guard lk(box.m);
  return box.arrivals;
}

std::uint64_t RankContext::wait_arrivals(std::uint64_t seen) {
  detail::Mailbox& box = *comm_->st_->boxes[static_cast<std::size_t>(rank_)];
  std::unique_lock lk(box.m);
  // Bounded wait: deliveries and rank-death marks notify the cv, but the
  // timeout keeps liveness re-checks flowing even if neither happens.
  box.cv.wait_for(lk, std::chrono::milliseconds(1),
                  [&] { return box.arrivals > seen; });
  return box.arrivals;
}

Request RankContext::irecv(int source, int tag) {
  return Request(comm_->st_, rank_, source, tag);
}

int RankContext::next_collective_tag() {
  // Reserved negative tag space; -1 is never produced (kAnyTag).
  return -2 - (collective_seq_++);
}

void RankContext::barrier() {
  PDC_TRACE_SCOPE("mp.barrier");
  // Tree reduce of a token, then tree broadcast of the release.
  const int up_tag = next_collective_tag();
  const int down_tag = next_collective_tag();
  const int p = size();
  if (p == 1) return;

  // Reduce phase toward rank 0 (binomial).
  int mask = 1;
  while (mask < p) {
    if ((rank_ & mask) == 0) {
      const int partner = rank_ | mask;
      if (partner < p) (void)ch_take(partner, up_tag);
    } else {
      ch_send(rank_ & ~mask, up_tag, {});
      break;
    }
    mask <<= 1;
  }
  // Broadcast release from rank 0.
  mask = 1;
  while (mask < p) {
    if (rank_ & mask) {
      (void)ch_take(rank_ - mask, down_tag);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (rank_ + mask < p && (rank_ & (mask - 1)) == 0 &&
        (rank_ & mask) == 0) {
      ch_send(rank_ + mask, down_tag, {});
    }
    mask >>= 1;
  }
}

std::vector<std::int64_t> RankContext::broadcast(int root,
                                                 std::vector<std::int64_t> data,
                                                 CollectiveAlgo algo) {
  PDC_TRACE_SCOPE("mp.bcast");
  const int tag = next_collective_tag();
  const int p = size();
  if (root < 0 || root >= p) throw std::out_of_range("bad root");
  if (p == 1) return data;

  if (algo == CollectiveAlgo::kFlat) {
    if (rank_ == root) {
      for (int r = 0; r < p; ++r)
        if (r != root) ch_send(r, tag, data);
      return data;
    }
    return ch_take(root, tag).data;
  }

  // Binomial tree (MPICH-style).
  const int relative = (rank_ - root + p) % p;
  int mask = 1;
  while (mask < p) {
    if (relative & mask) {
      const int src = (rank_ - mask + p) % p;
      data = ch_take(src, tag).data;
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (relative + mask < p) {
      const int dst = (rank_ + mask) % p;
      ch_send(dst, tag, data);
    }
    mask >>= 1;
  }
  return data;
}

std::int64_t RankContext::broadcast_value(int root, std::int64_t value,
                                          CollectiveAlgo algo) {
  const auto v = broadcast(root, {value}, algo);
  return v.at(0);
}

std::int64_t RankContext::reduce(int root, std::int64_t value, ReduceOp op,
                                 CollectiveAlgo algo) {
  PDC_TRACE_SCOPE("mp.reduce");
  const int tag = next_collective_tag();
  const int p = size();
  if (root < 0 || root >= p) throw std::out_of_range("bad root");
  if (p == 1) return value;

  if (algo == CollectiveAlgo::kFlat) {
    if (rank_ == root) {
      std::int64_t acc = value;
      if (reliable_) {
        // Per-source receives so a dead contributor is detected instead
        // of waiting forever on an any-source match that never comes.
        for (int r = 0; r < p; ++r) {
          if (r == root) continue;
          acc = apply(op, acc, ch_take(r, tag).data.at(0));
        }
      } else {
        for (int i = 0; i < p - 1; ++i) {
          const Message m = ch_take(kAnySource, tag);
          acc = apply(op, acc, m.data.at(0));
        }
      }
      return acc;
    }
    ch_send(root, tag, {value});
    return identity(op);
  }

  // Binomial tree toward root.
  const int relative = (rank_ - root + p) % p;
  std::int64_t acc = value;
  int mask = 1;
  while (mask < p) {
    if ((relative & mask) == 0) {
      const int partner_rel = relative | mask;
      if (partner_rel < p) {
        const int src = (partner_rel + root) % p;
        const Message m = ch_take(src, tag);
        acc = apply(op, acc, m.data.at(0));
      }
    } else {
      const int dst = ((relative & ~mask) + root) % p;
      ch_send(dst, tag, {acc});
      return identity(op);
    }
    mask <<= 1;
  }
  return acc;  // root
}

std::int64_t RankContext::allreduce(std::int64_t value, ReduceOp op) {
  PDC_TRACE_SCOPE("mp.allreduce");
  const std::int64_t total = reduce(0, value, op);
  return broadcast_value(0, rank_ == 0 ? total : 0);
}

std::vector<std::int64_t> RankContext::gather(int root, std::int64_t value) {
  PDC_TRACE_SCOPE("mp.gather");
  const int tag = next_collective_tag();
  const int p = size();
  if (root < 0 || root >= p) throw std::out_of_range("bad root");
  if (rank_ != root) {
    ch_send(root, tag, {value});
    return {};
  }
  std::vector<std::int64_t> out(static_cast<std::size_t>(p));
  out[static_cast<std::size_t>(rank_)] = value;
  for (int r = 0; r < p; ++r) {
    if (r == root) continue;
    out[static_cast<std::size_t>(r)] = ch_take(r, tag).data.at(0);
  }
  return out;
}

std::int64_t RankContext::scatter(int root,
                                  const std::vector<std::int64_t>& values) {
  PDC_TRACE_SCOPE("mp.scatter");
  const int tag = next_collective_tag();
  const int p = size();
  if (root < 0 || root >= p) throw std::out_of_range("bad root");
  if (rank_ == root) {
    if (values.size() != static_cast<std::size_t>(p))
      throw std::invalid_argument("scatter needs exactly P values at root");
    for (int r = 0; r < p; ++r)
      if (r != root)
        ch_send(r, tag, {values[static_cast<std::size_t>(r)]});
    return values[static_cast<std::size_t>(rank_)];
  }
  return ch_take(root, tag).data.at(0);
}

std::vector<std::int64_t> RankContext::allgather(std::int64_t value) {
  PDC_TRACE_SCOPE("mp.allgather");
  std::vector<std::int64_t> all = gather(0, value);
  if (rank_ != 0) all.assign(static_cast<std::size_t>(size()), 0);
  return broadcast(0, std::move(all));
}

std::vector<std::vector<std::int64_t>> RankContext::alltoall(
    std::vector<std::vector<std::int64_t>> outgoing) {
  PDC_TRACE_SCOPE("mp.alltoall");
  const int tag = next_collective_tag();
  const int p = size();
  if (outgoing.size() != static_cast<std::size_t>(p))
    throw std::invalid_argument("alltoall needs exactly P outgoing buffers");
  // Buffered sends: post everything, then collect per-source.
  for (int d = 0; d < p; ++d) {
    if (d == rank_) continue;
    ch_send(d, tag, std::move(outgoing[static_cast<std::size_t>(d)]));
  }
  std::vector<std::vector<std::int64_t>> incoming(
      static_cast<std::size_t>(p));
  incoming[static_cast<std::size_t>(rank_)] =
      std::move(outgoing[static_cast<std::size_t>(rank_)]);
  for (int s = 0; s < p; ++s) {
    if (s == rank_) continue;
    incoming[static_cast<std::size_t>(s)] = ch_take(s, tag).data;
  }
  return incoming;
}

std::vector<std::int64_t> RankContext::sendrecv(
    int dest, std::vector<std::int64_t> data, int source) {
  PDC_TRACE_SCOPE("mp.sendrecv");
  const int tag = next_collective_tag();
  ch_send(dest, tag, std::move(data));
  return ch_take(source, tag).data;
}

std::int64_t RankContext::exscan(std::int64_t value, ReduceOp op) {
  PDC_TRACE_SCOPE("mp.exscan");
  const int tag = next_collective_tag();
  const int p = size();
  std::int64_t prefix = identity(op);
  if (rank_ > 0) prefix = ch_take(rank_ - 1, tag).data.at(0);
  if (rank_ + 1 < p)
    ch_send(rank_ + 1, tag, {apply(op, prefix, value)});
  return prefix;
}

}  // namespace pdc::mp
