#include "pdc/mp/launch.hpp"

#include <signal.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <thread>

namespace pdc::mp::launch {

namespace {

std::map<std::string, SpmdBodyFn>& registry() {
  static std::map<std::string, SpmdBodyFn> r;
  return r;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);  // hexfloat: exact round trip
  return buf;
}

}  // namespace

bool register_body(const std::string& name, SpmdBodyFn fn) {
  auto [it, inserted] = registry().emplace(name, fn);
  if (!inserted) throw std::logic_error("duplicate SPMD body: " + name);
  return true;
}

std::string plan_to_flags(const FaultPlan& plan) {
  std::ostringstream ss;
  ss << "drop=" << fmt_double(plan.drop) << ",dup=" << fmt_double(plan.dup)
     << ",reorder=" << (plan.reorder ? 1 : 0)
     << ",delay_prob=" << fmt_double(plan.delay_prob)
     << ",max_delay=" << plan.max_delay << ",kill_rank=" << plan.kill_rank
     << ",kill_after_ops=" << plan.kill_after_ops
     << ",jitter=" << (plan.jitter ? 1 : 0) << ",seed=" << plan.seed;
  return ss.str();
}

FaultPlan plan_from_flags(const std::string& s) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos < s.size()) {
    auto comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    const std::string kv = s.substr(pos, comma - pos);
    pos = comma + 1;
    const auto eq = kv.find('=');
    if (eq == std::string::npos)
      throw std::invalid_argument("bad fault-plan flag: " + kv);
    const std::string k = kv.substr(0, eq);
    const std::string v = kv.substr(eq + 1);
    if (k == "drop") plan.drop = std::strtod(v.c_str(), nullptr);
    else if (k == "dup") plan.dup = std::strtod(v.c_str(), nullptr);
    else if (k == "reorder") plan.reorder = v != "0";
    else if (k == "delay_prob") plan.delay_prob = std::strtod(v.c_str(), nullptr);
    else if (k == "max_delay") plan.max_delay = std::atoi(v.c_str());
    else if (k == "kill_rank") plan.kill_rank = std::atoi(v.c_str());
    else if (k == "kill_after_ops") plan.kill_after_ops = std::atoi(v.c_str());
    else if (k == "jitter") plan.jitter = v != "0";
    else if (k == "seed") plan.seed = std::strtoull(v.c_str(), nullptr, 10);
    else throw std::invalid_argument("unknown fault-plan flag: " + k);
  }
  return plan;
}

namespace {

std::string retry_to_flags(const RetryPolicy& r) {
  std::ostringstream ss;
  ss << r.initial_backoff.count() << ',' << r.backoff_factor << ','
     << r.max_backoff.count() << ',' << r.give_up.count();
  return ss.str();
}

RetryPolicy retry_from_flags(const std::string& s) {
  RetryPolicy r;
  long long a = 0, c = 0, d = 0;
  int b = 0;
  if (std::sscanf(s.c_str(), "%lld,%d,%lld,%lld", &a, &b, &c, &d) != 4)
    throw std::invalid_argument("bad retry flags: " + s);
  r.initial_backoff = std::chrono::microseconds(a);
  r.backoff_factor = b;
  r.max_backoff = std::chrono::microseconds(c);
  r.give_up = std::chrono::milliseconds(d);
  return r;
}

int run_child(const std::string& body_name, const TransportOptions& topt,
              const FaultPlan& plan, const RetryPolicy& retry, bool reliable,
              const std::string& outpath, std::vector<std::string> args) {
  const auto it = registry().find(body_name);
  if (it == registry().end()) {
    std::fprintf(stderr, "pdc-spmd child: unknown body \"%s\"\n",
                 body_name.c_str());
    return 44;
  }
  int code = 0;
  std::string err;
  BodyCtx io;
  io.args = std::move(args);
  std::optional<Communicator> comm;
  try {
    comm.emplace(topt);
    comm->set_fault_plan(plan);
    comm->set_retry_policy(retry);
    comm->run([&](RankContext& ctx) {
      if (reliable) ctx.set_reliable(true);
      it->second(ctx, io);
    });
  } catch (const RankFailedError& e) {
    code = 42;
    err = e.what();
  } catch (const std::exception& e) {
    code = 43;
    err = e.what();
  } catch (...) {
    code = 43;
    err = "unknown exception";
  }
  if (!outpath.empty()) {
    write_file(outpath, io.out);
    if (!err.empty()) write_file(outpath + ".err", err);
    if (comm) {
      // This process's final (quiescent) ledger, for the parent to sum
      // into LaunchResult::traffic.
      const auto t = comm->traffic();
      std::ostringstream ts;
      ts << t.messages << ' ' << t.payload_words << ' ' << t.acks << ' '
         << t.retries << ' ' << t.dropped << ' ' << t.duplicates << ' '
         << t.delayed;
      write_file(outpath + ".traffic", ts.str());
    }
  }
  return code;
}

}  // namespace

bool maybe_run_child(int argc, char** argv) {
  std::string body, transport = "shm", endpoint, outpath, plan_flags,
                    retry_flags;
  int rank = 0, world = 1, reliable = 0;
  std::vector<std::string> args;
  bool is_child = false;
  auto val = [](const char* arg, const char* flag) -> const char* {
    const auto n = std::strlen(flag);
    return std::strncmp(arg, flag, n) == 0 ? arg + n : nullptr;
  };
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (const char* v = val(a, "--pdc-spmd-body=")) {
      body = v;
      is_child = true;
    } else if (const char* v2 = val(a, "--pdc-rank=")) rank = std::atoi(v2);
    else if (const char* v3 = val(a, "--pdc-world=")) world = std::atoi(v3);
    else if (const char* v4 = val(a, "--pdc-transport=")) transport = v4;
    else if (const char* v5 = val(a, "--pdc-endpoint=")) endpoint = v5;
    else if (const char* v6 = val(a, "--pdc-out=")) outpath = v6;
    else if (const char* v7 = val(a, "--pdc-reliable=")) reliable = std::atoi(v7);
    else if (const char* v8 = val(a, "--pdc-plan=")) plan_flags = v8;
    else if (const char* v9 = val(a, "--pdc-retry=")) retry_flags = v9;
    else if (const char* v10 = val(a, "--pdc-arg=")) args.emplace_back(v10);
  }
  if (!is_child) return false;
  int code = 44;
  try {
    TransportOptions topt;
    topt.kind = transport_kind_from_string(transport);
    topt.rank = rank;
    topt.world = world;
    topt.endpoint = endpoint;
    const FaultPlan plan =
        plan_flags.empty() ? FaultPlan{} : plan_from_flags(plan_flags);
    const RetryPolicy retry =
        retry_flags.empty() ? RetryPolicy{} : retry_from_flags(retry_flags);
    code = run_child(body, topt, plan, retry, reliable != 0, outpath,
                     std::move(args));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pdc-spmd child: %s\n", e.what());
    code = 44;
  }
  std::exit(code);
}

namespace {

/// The inproc "launch": no processes at all — run the registered body on
/// a plain in-process Communicator so process backends have a baseline
/// with the exact same digest plumbing.
LaunchResult run_inproc(const LaunchOptions& opt, SpmdBodyFn fn) {
  LaunchResult res;
  res.ranks.resize(static_cast<std::size_t>(opt.world));
  std::vector<BodyCtx> ios(static_cast<std::size_t>(opt.world));
  for (auto& io : ios) io.args = opt.args;
  Communicator comm(opt.world);
  comm.set_fault_plan(opt.plan);
  comm.set_retry_policy(opt.retry);
  try {
    comm.run([&](RankContext& ctx) {
      if (opt.reliable) ctx.set_reliable(true);
      fn(ctx, ios[static_cast<std::size_t>(ctx.rank())]);
    });
    res.outcome = LaunchResult::kOk;
  } catch (const RankFailedError& e) {
    res.outcome = LaunchResult::kRankFailed;
    res.error = e.what();
    if (opt.plan.kills()) res.killed_rank = opt.plan.kill_rank;
  } catch (const std::exception& e) {
    res.outcome = LaunchResult::kError;
    res.error = e.what();
  }
  for (int r = 0; r < opt.world; ++r) {
    res.ranks[static_cast<std::size_t>(r)].exit_code =
        res.outcome == LaunchResult::kOk ? 0 : -1;
    res.ranks[static_cast<std::size_t>(r)].out =
        std::move(ios[static_cast<std::size_t>(r)].out);
  }
  // All rank threads have joined: the shared ledger is quiescent and IS
  // the whole-world total the process backends reconstruct by summation.
  res.traffic = comm.traffic();
  return res;
}

}  // namespace

LaunchResult run_spmd(const LaunchOptions& opt) {
  if (opt.world < 1) throw std::invalid_argument("world must be >= 1");
  const auto it = registry().find(opt.body);
  if (it == registry().end())
    throw std::invalid_argument("unknown SPMD body: " + opt.body);
  if (opt.kind == TransportKind::kInproc) return run_inproc(opt, it->second);

  const auto w = static_cast<std::size_t>(opt.world);
  std::string dir = "/tmp/pdc_spmdXXXXXX";
  if (::mkdtemp(dir.data()) == nullptr)
    throw std::runtime_error(std::string("mkdtemp: ") + std::strerror(errno));

  static std::atomic<unsigned> world_counter{0};
  std::string endpoint;
  if (opt.kind == TransportKind::kShm)
    endpoint = "/pdc_" + std::to_string(::getpid()) + "_" +
               std::to_string(world_counter.fetch_add(1));
  else
    endpoint = dir + "/port";

  std::vector<std::string> outpaths(w);
  for (std::size_t r = 0; r < w; ++r)
    outpaths[r] = dir + "/out_" + std::to_string(r);

  std::vector<pid_t> pids(w, -1);
  for (int r = 0; r < opt.world; ++r) {
    std::vector<std::string> child_args = {
        "/proc/self/exe",
        "--pdc-spmd-body=" + opt.body,
        "--pdc-rank=" + std::to_string(r),
        "--pdc-world=" + std::to_string(opt.world),
        "--pdc-transport=" + std::string(to_string(opt.kind)),
        "--pdc-endpoint=" + endpoint,
        "--pdc-out=" + outpaths[static_cast<std::size_t>(r)],
        "--pdc-reliable=" + std::to_string(opt.reliable ? 1 : 0),
        "--pdc-plan=" + plan_to_flags(opt.plan),
        "--pdc-retry=" + retry_to_flags(opt.retry),
    };
    for (const auto& a : opt.args) child_args.push_back("--pdc-arg=" + a);
    const pid_t pid = ::fork();
    if (pid < 0) throw std::runtime_error(std::string("fork: ") +
                                          std::strerror(errno));
    if (pid == 0) {
      std::vector<char*> cargv;
      cargv.reserve(child_args.size() + 1);
      for (auto& a : child_args) cargv.push_back(a.data());
      cargv.push_back(nullptr);
      ::execv("/proc/self/exe", cargv.data());
      ::_exit(127);
    }
    pids[static_cast<std::size_t>(r)] = pid;
  }

  // Reap promptly: the shm transport's pid-probe liveness check needs a
  // SIGKILLed child's pid gone, not lingering as a zombie.
  const auto deadline = std::chrono::steady_clock::now() + opt.timeout;
  std::vector<int> status(w, 0);
  std::vector<bool> done(w, false);
  int remaining = opt.world;
  bool timed_out = false;
  while (remaining > 0) {
    bool reaped = false;
    for (std::size_t r = 0; r < w; ++r) {
      if (done[r]) continue;
      int st = 0;
      const pid_t got = ::waitpid(pids[r], &st, WNOHANG);
      if (got == pids[r]) {
        status[r] = st;
        done[r] = true;
        --remaining;
        reaped = true;
      }
    }
    if (remaining == 0) break;
    if (!reaped) {
      if (std::chrono::steady_clock::now() > deadline) {
        timed_out = true;
        for (std::size_t r = 0; r < w; ++r)
          if (!done[r]) ::kill(pids[r], SIGKILL);
        for (std::size_t r = 0; r < w; ++r) {
          if (done[r]) continue;
          int st = 0;
          ::waitpid(pids[r], &st, 0);
          status[r] = st;
          done[r] = true;
          --remaining;
        }
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }

  LaunchResult res;
  res.ranks.resize(w);
  bool any_error = false;
  bool any_rank_failed = false;
  for (std::size_t r = 0; r < w; ++r) {
    RankResult& rr = res.ranks[r];
    const int st = status[r];
    if (WIFEXITED(st)) {
      rr.exit_code = WEXITSTATUS(st);
    } else if (WIFSIGNALED(st)) {
      rr.signaled = true;
      rr.term_signal = WTERMSIG(st);
    }
    rr.out = read_file(outpaths[r]);
    rr.error = read_file(outpaths[r] + ".err");
    if (const auto tf = read_file(outpaths[r] + ".traffic"); !tf.empty()) {
      TrafficStats t;
      std::istringstream ts(tf);
      if (ts >> t.messages >> t.payload_words >> t.acks >> t.retries >>
          t.dropped >> t.duplicates >> t.delayed)
        res.traffic += t;
    }
    if (rr.signaled && rr.term_signal == SIGKILL && !timed_out) {
      any_rank_failed = true;
      if (res.killed_rank < 0) res.killed_rank = static_cast<int>(r);
    } else if (rr.signaled) {
      any_error = true;
    } else if (rr.exit_code == 42) {
      any_rank_failed = true;
    } else if (rr.exit_code != 0) {
      any_error = true;
    }
    if (res.error.empty() && !rr.error.empty() && rr.exit_code != 0)
      res.error = rr.error;
  }
  if (timed_out)
    res.outcome = LaunchResult::kTimeout;
  else if (any_error)
    res.outcome = LaunchResult::kError;
  else if (any_rank_failed)
    res.outcome = LaunchResult::kRankFailed;
  else
    res.outcome = LaunchResult::kOk;
  if (res.outcome == LaunchResult::kRankFailed && res.error.empty() &&
      res.killed_rank >= 0)
    // A world so small nobody survived to report it (or survivors raced
    // the kill): synthesize the same deterministic message run() throws.
    res.error = "rank " + std::to_string(res.killed_rank) +
                " killed by fault plan " + opt.plan.describe();

  // Cleanup: out files, the endpoint, the temp dir. The shm segment is
  // normally unlinked by rank 0 post-handshake; insure against a rank 0
  // killed mid-handshake.
  for (std::size_t r = 0; r < w; ++r) {
    std::remove(outpaths[r].c_str());
    std::remove((outpaths[r] + ".err").c_str());
    std::remove((outpaths[r] + ".traffic").c_str());
  }
  if (opt.kind == TransportKind::kTcp) {
    std::remove(endpoint.c_str());
    std::remove((endpoint + ".tmp").c_str());
  } else {
    ::shm_unlink(endpoint.c_str());
  }
  ::rmdir(dir.c_str());
  return res;
}

}  // namespace pdc::mp::launch
