// Shared-memory ring transport: P processes map one shm_open/mmap segment
// holding a lock-free SPSC byte ring per ordered rank pair. Rank 0 creates
// and initializes the segment; everyone else attaches, the attach counts
// double as the rendezvous barrier, and rank 0 unlinks the name once all
// ranks are in (so a crashed world cannot leak the segment).
//
// Liveness: every rank publishes pid + a heartbeat its progress thread
// bumps continuously. A peer is declared dead when its published state is
// terminal (announce()), its pid probe reports ESRCH (the launcher reaps
// children promptly, so a SIGKILLed rank's pid vanishes fast), or its
// heartbeat goes stale (covers the zombie window when nobody reaped it).
// A peer is only judged after its inbound ring is fully drained, so
// messages it sent before dying are never misreported as lost.

#include <fcntl.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "pdc/mp/transport.hpp"

namespace pdc::mp {
namespace {

constexpr std::uint64_t kReadyMagic = 0x7064635f73686d31ULL;  // "pdc_shm1"

struct alignas(64) SegHead {
  std::atomic<std::uint64_t> ready;  ///< kReadyMagic once fully initialized
  std::int32_t world;
  std::uint32_t ring_bytes;
};

struct alignas(64) RankSlot {
  std::atomic<std::int32_t> pid;
  std::atomic<std::int32_t> state;  ///< rankstate::* published by announce()
  std::atomic<std::int32_t> attached;
  std::atomic<std::uint64_t> heartbeat;
};

/// SPSC ring: monotonic positions, data capacity is a power of two.
/// Producer owns tail, consumer owns head; cross-process visibility of the
/// copied bytes rides the release/acquire pair on tail (and head for the
/// producer's free-space check).
struct RingHdr {
  alignas(64) std::atomic<std::uint64_t> head;  ///< consumer position
  alignas(64) std::atomic<std::uint64_t> tail;  ///< producer position
};

class ShmTransport final : public Transport {
 public:
  explicit ShmTransport(const TransportOptions& opt)
      : opt_(opt), world_(opt.world), rank_(opt.rank) {
    if (opt_.endpoint.empty() || opt_.endpoint[0] != '/')
      throw std::invalid_argument(
          "shm transport needs a \"/name\" endpoint (shm_open name)");
    ring_bytes_ = 4096;
    while (ring_bytes_ < opt_.shm_ring_bytes) ring_bytes_ <<= 1;
  }

  ~ShmTransport() override { teardown(); }

  [[nodiscard]] const char* name() const override { return "shm"; }
  [[nodiscard]] bool cross_process() const override { return true; }
  [[nodiscard]] int local_rank() const override { return rank_; }

  void start(Sink* sink) override {
    sink_ = sink;
    const auto deadline =
        std::chrono::steady_clock::now() + opt_.handshake_timeout;
    if (rank_ == 0) {
      ::shm_unlink(opt_.endpoint.c_str());  // stale segment from a crash
      fd_ = ::shm_open(opt_.endpoint.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
      if (fd_ < 0) sys_fail("shm_open(create " + opt_.endpoint + ")");
      unlink_owner_ = true;
      if (::ftruncate(fd_, static_cast<off_t>(seg_size())) != 0)
        sys_fail("ftruncate(shm segment)");
      map_segment();
      auto* h = new (base_) SegHead;
      h->world = world_;
      h->ring_bytes = static_cast<std::uint32_t>(ring_bytes_);
      for (int r = 0; r < world_; ++r) {
        auto* s = new (slot_ptr(r)) RankSlot;
        s->pid.store(0);
        s->state.store(rankstate::kRunning);
        s->attached.store(0);
        s->heartbeat.store(0);
      }
      for (int i = 0; i < world_ * world_; ++i) {
        auto* r = new (ring_ptr(i)) RingHdr;
        r->head.store(0);
        r->tail.store(0);
      }
      h->ready.store(kReadyMagic, std::memory_order_release);
    } else {
      while ((fd_ = ::shm_open(opt_.endpoint.c_str(), O_RDWR, 0600)) < 0) {
        if (errno != ENOENT) sys_fail("shm_open(" + opt_.endpoint + ")");
        wait_or_fail(deadline, "shm segment to appear");
      }
      struct stat sb{};
      for (;;) {
        if (::fstat(fd_, &sb) != 0) sys_fail("fstat(shm segment)");
        if (static_cast<std::size_t>(sb.st_size) >= seg_size()) break;
        wait_or_fail(deadline, "shm segment to be sized");
      }
      map_segment();
      auto* h = head_ptr();
      while (h->ready.load(std::memory_order_acquire) != kReadyMagic)
        wait_or_fail(deadline, "shm segment to initialize");
      if (h->world != world_ ||
          h->ring_bytes != static_cast<std::uint32_t>(ring_bytes_))
        throw std::runtime_error("shm segment geometry mismatch: " +
                                 opt_.endpoint);
    }

    // Attach barrier: publish ourselves, wait for the full world.
    auto* me = slot_ptr(rank_);
    me->pid.store(static_cast<std::int32_t>(::getpid()));
    me->heartbeat.store(1);
    me->attached.store(1, std::memory_order_release);
    for (int r = 0; r < world_; ++r)
      while (slot_ptr(r)->attached.load(std::memory_order_acquire) == 0)
        wait_or_fail(deadline, "rank " + std::to_string(r) + " to attach");
    if (rank_ == 0) {
      ::shm_unlink(opt_.endpoint.c_str());
      unlink_owner_ = false;
    }

    send_mu_ = std::make_unique<std::mutex[]>(static_cast<std::size_t>(world_));
    pending_.assign(static_cast<std::size_t>(world_), {});
    stopped_reported_ = std::make_unique<std::atomic<bool>[]>(
        static_cast<std::size_t>(world_));
    stopped_state_ = std::make_unique<std::atomic<int>[]>(
        static_cast<std::size_t>(world_));
    for (int r = 0; r < world_; ++r) {
      stopped_reported_[r].store(false);
      stopped_state_[r].store(rankstate::kRunning);
    }
    stop_.store(false);
    progress_ = std::thread([this] { progress_loop(); });
  }

  void send(Frame&& f) override {
    const int d = f.dst;
    if (d < 0 || d >= world_) throw std::out_of_range("bad destination");
    if (d == rank_) {  // self-flow never touches the rings
      sink_->deliver(std::move(f));
      return;
    }
    std::vector<std::uint8_t> buf;
    wire::encode_frame(f, buf);
    if (buf.size() > ring_bytes_)
      throw std::runtime_error("frame of " + std::to_string(buf.size()) +
                               " bytes exceeds the shm ring capacity (" +
                               std::to_string(ring_bytes_) +
                               "); raise TransportOptions::shm_ring_bytes");
    const int st = stopped_state_[d].load();
    if (st == rankstate::kKilled || st == rankstate::kErrored)
      return;  // silent no-op: the host is gone
    std::lock_guard lk(send_mu_[d]);
    // FIFO: never jump the pending queue.
    if (pending_[d].empty() && write_ring(d, buf)) return;
    pending_[d].push_back(std::move(buf));
  }

  void flush() override {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(2000);
    for (;;) {
      bool clean = true;
      for (int d = 0; d < world_ && clean; ++d) {
        if (d == rank_) continue;
        const int st = stopped_state_[d].load();
        if (st == rankstate::kKilled || st == rankstate::kErrored) continue;
        {
          std::lock_guard lk(send_mu_[d]);
          if (!pending_[d].empty()) clean = false;
        }
        RingHdr* r = ring_hdr(rank_, d);
        if (r->tail.load(std::memory_order_relaxed) !=
            r->head.load(std::memory_order_acquire))
          clean = false;
      }
      if (clean || std::chrono::steady_clock::now() > deadline) return;
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }

  void announce(int state) override {
    slot_ptr(rank_)->state.store(state, std::memory_order_release);
    for (int p = 0; p < world_; ++p) {
      if (p == rank_) continue;
      Frame f;
      f.type = Frame::kFin;
      f.src = rank_;
      f.dst = p;
      f.seq = static_cast<std::uint64_t>(state);
      send(std::move(f));
    }
  }

  void close(std::chrono::milliseconds linger) override {
    const auto deadline = std::chrono::steady_clock::now() + linger;
    for (;;) {
      bool all = true;
      for (int p = 0; p < world_; ++p)
        if (p != rank_ && !stopped_reported_[p].load()) all = false;
      if (all || std::chrono::steady_clock::now() > deadline) break;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    teardown();
  }

 private:
  // ---- segment geometry ----

  [[nodiscard]] std::size_t ring_stride() const {
    return sizeof(RingHdr) + ring_bytes_;
  }
  [[nodiscard]] std::size_t seg_size() const {
    const auto w = static_cast<std::size_t>(world_);
    return sizeof(SegHead) + w * sizeof(RankSlot) + w * w * ring_stride();
  }
  [[nodiscard]] SegHead* head_ptr() const {
    return reinterpret_cast<SegHead*>(base_);
  }
  [[nodiscard]] RankSlot* slot_ptr(int r) const {
    return reinterpret_cast<RankSlot*>(base_ + sizeof(SegHead) +
                                       static_cast<std::size_t>(r) *
                                           sizeof(RankSlot));
  }
  [[nodiscard]] std::uint8_t* ring_base(int idx) const {
    return base_ + sizeof(SegHead) +
           static_cast<std::size_t>(world_) * sizeof(RankSlot) +
           static_cast<std::size_t>(idx) * ring_stride();
  }
  [[nodiscard]] void* ring_ptr(int idx) const { return ring_base(idx); }
  [[nodiscard]] RingHdr* ring_hdr(int src, int dst) const {
    return reinterpret_cast<RingHdr*>(ring_base(src * world_ + dst));
  }
  [[nodiscard]] std::uint8_t* ring_data(int src, int dst) const {
    return ring_base(src * world_ + dst) + sizeof(RingHdr);
  }

  void map_segment() {
    void* p = ::mmap(nullptr, seg_size(), PROT_READ | PROT_WRITE, MAP_SHARED,
                     fd_, 0);
    if (p == MAP_FAILED) sys_fail("mmap(shm segment)");
    base_ = static_cast<std::uint8_t*>(p);
  }

  [[noreturn]] static void sys_fail(const std::string& what) {
    throw std::runtime_error(what + ": " + std::strerror(errno));
  }

  void wait_or_fail(std::chrono::steady_clock::time_point deadline,
                    const std::string& what) const {
    if (std::chrono::steady_clock::now() > deadline)
      throw std::runtime_error("shm handshake timed out waiting for " + what);
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }

  // ---- ring I/O ----

  bool write_ring(int d, const std::vector<std::uint8_t>& buf) {
    RingHdr* r = ring_hdr(rank_, d);
    const auto tail = r->tail.load(std::memory_order_relaxed);  // sole producer
    const auto head = r->head.load(std::memory_order_acquire);
    if (ring_bytes_ - (tail - head) < buf.size()) return false;
    std::uint8_t* data = ring_data(rank_, d);
    const std::size_t idx = tail & (ring_bytes_ - 1);
    const std::size_t first = std::min(buf.size(), ring_bytes_ - idx);
    std::memcpy(data + idx, buf.data(), first);
    std::memcpy(data, buf.data() + first, buf.size() - first);
    r->tail.store(tail + buf.size(), std::memory_order_release);
    return true;
  }

  void copy_out(int s, std::uint64_t pos, std::uint8_t* dst,
                std::size_t len) const {
    const std::uint8_t* data = ring_data(s, rank_);
    const std::size_t idx = pos & (ring_bytes_ - 1);
    const std::size_t first = std::min(len, ring_bytes_ - idx);
    std::memcpy(dst, data + idx, first);
    std::memcpy(dst + first, data, len - first);
  }

  bool read_one(int s, std::vector<std::uint8_t>& scratch) {
    RingHdr* r = ring_hdr(s, rank_);
    const auto head = r->head.load(std::memory_order_relaxed);  // sole consumer
    const auto tail = r->tail.load(std::memory_order_acquire);
    const auto avail = tail - head;
    if (avail < 4) return false;
    std::uint8_t lenb[4];
    copy_out(s, head, lenb, 4);
    std::uint32_t total;
    std::memcpy(&total, lenb, 4);
    if (total < wire::kFrameHeaderBytes || total > ring_bytes_)
      throw std::runtime_error("shm ring corrupted (frame length " +
                               std::to_string(total) + ")");
    if (avail < total) return false;
    scratch.resize(total);
    copy_out(s, head, scratch.data(), total);
    Frame f;
    const auto consumed = wire::decode_frame(scratch.data(), total, f);
    r->head.store(head + consumed, std::memory_order_release);
    if (f.type == Frame::kFin)
      report_stopped(f.src, static_cast<int>(f.seq));
    else
      sink_->deliver(std::move(f));
    return true;
  }

  void report_stopped(int p, int state) {
    if (p < 0 || p >= world_ || p == rank_) return;
    if (stopped_reported_[p].exchange(true)) return;
    stopped_state_[p].store(state);
    sink_->peer_stopped(p, state);
  }

  // ---- progress thread ----

  void progress_loop() {
    using clock = std::chrono::steady_clock;
    std::vector<std::uint64_t> last_hb(static_cast<std::size_t>(world_), 0);
    std::vector<clock::time_point> hb_seen(static_cast<std::size_t>(world_),
                                           clock::now());
    std::vector<std::uint8_t> scratch;
    auto next_scan = clock::now();
    std::uint64_t beat = 1;
    // Idle strategy: poll the rings for a while before sleeping. A
    // ping-pong peer answers within a few microseconds, so parking the
    // thread on every empty pass would put one scheduler wakeup
    // (tens of microseconds) into every message's critical path.
    constexpr int kIdleSpinPasses = 4000;
    int idle_passes = 0;
    while (!stop_.load(std::memory_order_acquire)) {
      slot_ptr(rank_)->heartbeat.store(++beat, std::memory_order_relaxed);
      bool did = false;
      for (int d = 0; d < world_; ++d) {
        if (d == rank_) continue;
        std::lock_guard lk(send_mu_[d]);
        auto& q = pending_[d];
        while (!q.empty() && write_ring(d, q.front())) {
          q.pop_front();
          did = true;
        }
        const int st = stopped_state_[d].load();
        if (!q.empty() &&
            (st == rankstate::kKilled || st == rankstate::kErrored))
          q.clear();  // the host is gone; these can never land
      }
      for (int s = 0; s < world_; ++s) {
        if (s == rank_) continue;
        while (read_one(s, scratch)) did = true;
      }
      const auto now = clock::now();
      if (now >= next_scan) {
        next_scan = now + std::chrono::milliseconds(5);
        scan_liveness(now, last_hb, hb_seen);
      }
      if (did) {
        idle_passes = 0;
      } else if (++idle_passes < kIdleSpinPasses) {
        std::this_thread::yield();
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    }
  }

  void scan_liveness(std::chrono::steady_clock::time_point now,
                     std::vector<std::uint64_t>& last_hb,
                     std::vector<std::chrono::steady_clock::time_point>&
                         hb_seen) {
    for (int p = 0; p < world_; ++p) {
      if (p == rank_ || stopped_reported_[p].load()) continue;
      // Only judge a peer once its inbound ring is drained: frames it sent
      // before dying must be delivered, not misreported as lost.
      RingHdr* r = ring_hdr(p, rank_);
      if (r->tail.load(std::memory_order_acquire) !=
          r->head.load(std::memory_order_relaxed))
        continue;
      RankSlot* sl = slot_ptr(p);
      int st = sl->state.load(std::memory_order_acquire);
      if (st != rankstate::kRunning) {
        report_stopped(p, st);
        continue;
      }
      const auto pid = sl->pid.load();
      bool dead =
          pid > 0 && ::kill(pid, 0) == -1 && errno == ESRCH;
      const auto hb = sl->heartbeat.load(std::memory_order_relaxed);
      if (hb != last_hb[p]) {
        last_hb[p] = hb;
        hb_seen[p] = now;
      } else if (now - hb_seen[p] > std::chrono::milliseconds(3000)) {
        dead = true;  // zombie window: pid probe can't see an unreaped kill
      }
      if (dead) {
        st = sl->state.load(std::memory_order_acquire);  // close the race
        report_stopped(p, st != rankstate::kRunning ? st : rankstate::kKilled);
      }
    }
  }

  void teardown() {
    if (progress_.joinable()) {
      stop_.store(true, std::memory_order_release);
      progress_.join();
    }
    if (base_ != nullptr) {
      ::munmap(base_, seg_size());
      base_ = nullptr;
    }
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
    if (unlink_owner_) {
      ::shm_unlink(opt_.endpoint.c_str());
      unlink_owner_ = false;
    }
  }

  TransportOptions opt_;
  int world_;
  int rank_;
  std::size_t ring_bytes_ = 0;
  Sink* sink_ = nullptr;
  int fd_ = -1;
  bool unlink_owner_ = false;
  std::uint8_t* base_ = nullptr;

  /// Process-local: body thread and progress thread both produce into a
  /// ring (data vs acks), so each ring's single-producer side is a mutex
  /// away; cross-process it stays strictly SPSC.
  std::unique_ptr<std::mutex[]> send_mu_;
  std::vector<std::deque<std::vector<std::uint8_t>>> pending_;
  std::unique_ptr<std::atomic<bool>[]> stopped_reported_;
  std::unique_ptr<std::atomic<int>[]> stopped_state_;
  std::atomic<bool> stop_{false};
  std::thread progress_;
};

}  // namespace

std::unique_ptr<Transport> make_shm_transport(const TransportOptions& opt) {
  return std::make_unique<ShmTransport>(opt);
}

}  // namespace pdc::mp
