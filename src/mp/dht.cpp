#include "pdc/mp/dht.hpp"

#include <stdexcept>
#include <string>

namespace pdc::mp {

int BspHashMap::owner(std::int64_t key) const {
  return shard_owner(key, ctx_->size());
}

void BspHashMap::queue_put(std::int64_t key, std::int64_t value) {
  pending_puts_.emplace_back(key, value);
}

void BspHashMap::queue_get(std::int64_t key) {
  pending_gets_.push_back(key);
}

std::vector<BspHashMap::GetResult> BspHashMap::round() {
  ReliableModeScope guard(*ctx_, opts_.reliable || ctx_->reliable());
  const int p = ctx_->size();
  const auto up = static_cast<std::size_t>(p);
  const std::int64_t this_round = ++round_;

  // Wire format per destination:
  // [round, n_puts, k1, v1, ..., n_gets, g1, ...]. The round number lets
  // the owner assert exactly-once application per source.
  std::vector<std::vector<std::int64_t>> outgoing(up);
  {
    std::vector<std::vector<std::pair<std::int64_t, std::int64_t>>> puts(up);
    std::vector<std::vector<std::int64_t>> gets(up);
    for (const auto& [k, v] : pending_puts_)
      puts[static_cast<std::size_t>(owner(k))].emplace_back(k, v);
    for (const auto k : pending_gets_) {
      gets[static_cast<std::size_t>(owner(k))].push_back(k);
    }
    for (std::size_t d = 0; d < up; ++d) {
      auto& msg = outgoing[d];
      msg.push_back(this_round);
      msg.push_back(static_cast<std::int64_t>(puts[d].size()));
      for (const auto& [k, v] : puts[d]) {
        msg.push_back(k);
        msg.push_back(v);
      }
      msg.push_back(static_cast<std::int64_t>(gets[d].size()));
      for (const auto k : gets[d]) msg.push_back(k);
    }
  }
  const std::size_t n_gets = pending_gets_.size();
  std::vector<std::int64_t> get_keys = std::move(pending_gets_);
  pending_puts_.clear();
  pending_gets_.clear();

  auto incoming = ctx_->alltoall(std::move(outgoing));

  // Apply puts in source-rank order (deterministic last-writer-wins),
  // then answer gets: reply format per source: [found1, val1, ...] in the
  // source's request order.
  std::vector<std::vector<std::int64_t>> replies(up);
  for (std::size_t s = 0; s < up; ++s) {
    const auto& msg = incoming[s];
    std::size_t i = 0;
    const auto got_round = msg.at(i++);
    if (got_round != peer_round_[s] + 1)
      throw std::logic_error(
          "dht: round desync from rank " + std::to_string(s) + " (expected " +
          std::to_string(peer_round_[s] + 1) + ", got " +
          std::to_string(got_round) + ") — a batch was replayed or lost");
    peer_round_[s] = got_round;
    const auto n_puts = static_cast<std::size_t>(msg.at(i++));
    for (std::size_t k = 0; k < n_puts; ++k) {
      const auto key = msg.at(i++);
      const auto value = msg.at(i++);
      shard_[key] = value;
    }
  }
  for (std::size_t s = 0; s < up; ++s) {
    const auto& msg = incoming[s];
    std::size_t i = 1;  // skip round number
    const auto n_puts = static_cast<std::size_t>(msg.at(i++));
    i += 2 * n_puts;
    const auto n = static_cast<std::size_t>(msg.at(i++));
    for (std::size_t k = 0; k < n; ++k) {
      const auto key = msg.at(i++);
      const auto it = shard_.find(key);
      replies[s].push_back(it != shard_.end() ? 1 : 0);
      replies[s].push_back(it != shard_.end() ? it->second : 0);
    }
  }
  auto answers = ctx_->alltoall(std::move(replies));

  // Scatter answers back into queue order.
  std::vector<GetResult> results(n_gets);
  std::vector<std::size_t> cursor(up, 0);
  for (std::size_t slot = 0; slot < n_gets; ++slot) {
    const auto d = static_cast<std::size_t>(owner(get_keys[slot]));
    const std::size_t c = cursor[d]++;
    results[slot].key = get_keys[slot];
    results[slot].found = answers[d].at(2 * c) == 1;
    results[slot].value = answers[d].at(2 * c + 1);
  }
  return results;
}

}  // namespace pdc::mp
