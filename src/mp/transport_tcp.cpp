// TCP socket transport: N processes, full mesh over loopback (and in
// principle any network). Bootstrap: rank 0 binds an ephemeral listener
// and publishes its port by atomically renaming a one-line file into the
// endpoint path. Every other rank opens its own listener, dials rank 0,
// and sends HELLO{rank, my_port}; once all HELLOs are in, rank 0 sends
// everyone the rank -> port MAP, and each rank dials every lower-ranked
// peer (the bootstrap connection doubles as the rank-0 data connection).
// The handshake is the rendezvous barrier: start() returns only after all
// of this rank's connections exist.
//
// Data path: length-prefixed wire frames, non-blocking sockets with
// TCP_NODELAY, one progress thread multiplexing every connection through
// poll() (a self-pipe wakes it for outbound work). Dead-peer detection:
// EOF or ECONNRESET without a prior kFin frame means the peer's process
// died without announcing — a SIGKILL — and maps to rankstate::kKilled.

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "pdc/mp/transport.hpp"

namespace pdc::mp {
namespace {

constexpr std::uint64_t kHelloMagic = 0x7064635f74637031ULL;  // "pdc_tcp1"

struct Hello {
  std::uint64_t magic;
  std::int32_t rank;
  std::int32_t port;
};

class TcpTransport final : public Transport {
 public:
  explicit TcpTransport(const TransportOptions& opt)
      : opt_(opt), world_(opt.world), rank_(opt.rank) {
    if (opt_.endpoint.empty())
      throw std::invalid_argument(
          "tcp transport needs an endpoint (path of the rank-0 port file)");
  }

  ~TcpTransport() override { teardown(); }

  [[nodiscard]] const char* name() const override { return "tcp"; }
  [[nodiscard]] bool cross_process() const override { return true; }
  [[nodiscard]] int local_rank() const override { return rank_; }

  void start(Sink* sink) override {
    sink_ = sink;
    const auto deadline =
        std::chrono::steady_clock::now() + opt_.handshake_timeout;
    conns_ = std::vector<Conn>(static_cast<std::size_t>(world_));
    if (world_ > 1) handshake(deadline);
    for (auto& c : conns_)
      if (c.fd >= 0) set_data_mode(c.fd);
    if (::pipe(wake_pipe_) != 0) sys_fail("pipe(self-pipe)");
    set_nonblock(wake_pipe_[0]);
    set_nonblock(wake_pipe_[1]);
    stop_.store(false);
    progress_ = std::thread([this] { progress_loop(); });
  }

  void send(Frame&& f) override {
    const int d = f.dst;
    if (d < 0 || d >= world_) throw std::out_of_range("bad destination");
    if (d == rank_) {  // self-flow never touches a socket
      sink_->deliver(std::move(f));
      return;
    }
    Conn& c = conns_[static_cast<std::size_t>(d)];
    {
      std::lock_guard lk(c.mu);
      if (c.fd < 0) return;  // silent no-op: peer is gone
      wire::encode_frame(f, c.outbuf);
    }
    wake();
  }

  void flush() override {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(2000);
    for (;;) {
      bool clean = true;
      for (auto& c : conns_) {
        std::lock_guard lk(c.mu);
        if (c.fd >= 0 && c.out_off < c.outbuf.size()) clean = false;
      }
      if (clean || std::chrono::steady_clock::now() > deadline) return;
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }

  void announce(int state) override {
    for (int p = 0; p < world_; ++p) {
      if (p == rank_) continue;
      Frame f;
      f.type = Frame::kFin;
      f.src = rank_;
      f.dst = p;
      f.seq = static_cast<std::uint64_t>(state);
      send(std::move(f));
    }
  }

  void close(std::chrono::milliseconds linger) override {
    const auto deadline = std::chrono::steady_clock::now() + linger;
    for (;;) {
      bool all = true;
      for (int p = 0; p < world_; ++p)
        if (p != rank_ &&
            !conns_[static_cast<std::size_t>(p)].stopped_reported.load())
          all = false;
      if (all || std::chrono::steady_clock::now() > deadline) break;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    teardown();
  }

 private:
  struct Conn {
    int fd = -1;
    std::mutex mu;                     ///< guards fd close, outbuf, out_off
    std::vector<std::uint8_t> outbuf;  ///< encoded frames awaiting write
    std::size_t out_off = 0;
    std::vector<std::uint8_t> inbuf;   ///< partial inbound frame bytes
    std::atomic<bool> stopped_reported{false};

    Conn() = default;
    Conn(Conn&& o) noexcept
        : fd(o.fd),
          outbuf(std::move(o.outbuf)),
          out_off(o.out_off),
          inbuf(std::move(o.inbuf)),
          stopped_reported(o.stopped_reported.load()) {}
    Conn& operator=(Conn&&) = delete;
  };

  // ---- handshake ----

  [[noreturn]] static void sys_fail(const std::string& what) {
    throw std::runtime_error(what + ": " + std::strerror(errno));
  }

  static void set_nonblock(int fd) {
    const int fl = ::fcntl(fd, F_GETFL);
    if (fl < 0 || ::fcntl(fd, F_SETFL, fl | O_NONBLOCK) < 0)
      sys_fail("fcntl(O_NONBLOCK)");
  }

  static void set_data_mode(int fd) {
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    set_nonblock(fd);
  }

  static void check_deadline(std::chrono::steady_clock::time_point deadline,
                             const std::string& what) {
    if (std::chrono::steady_clock::now() > deadline)
      throw std::runtime_error("tcp handshake timed out waiting for " + what);
  }

  static int make_listener(int backlog, int* port_out) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) sys_fail("socket(listener)");
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
      sys_fail("bind(listener)");
    if (::listen(fd, backlog) != 0) sys_fail("listen");
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
      sys_fail("getsockname");
    *port_out = ntohs(addr.sin_port);
    return fd;
  }

  static int accept_with_deadline(
      int lfd, std::chrono::steady_clock::time_point deadline) {
    for (;;) {
      pollfd p{lfd, POLLIN, 0};
      const int r = ::poll(&p, 1, 50);
      if (r > 0) {
        const int fd = ::accept(lfd, nullptr, nullptr);
        if (fd >= 0) return fd;
        if (errno != EINTR && errno != EAGAIN) sys_fail("accept");
      }
      check_deadline(deadline, "an inbound connection");
    }
  }

  static int dial_with_deadline(
      int port, std::chrono::steady_clock::time_point deadline,
      const std::string& who) {
    for (;;) {
      const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd < 0) sys_fail("socket(dial)");
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = htons(static_cast<std::uint16_t>(port));
      if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0)
        return fd;
      const int e = errno;
      ::close(fd);
      if (e != ECONNREFUSED && e != EINTR && e != ETIMEDOUT)
        sys_fail("connect(" + who + ")");
      check_deadline(deadline, who);
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  }

  static void read_full(int fd, void* buf, std::size_t n,
                        std::chrono::steady_clock::time_point deadline,
                        const std::string& what) {
    auto* p = static_cast<char*>(buf);
    while (n > 0) {
      pollfd pf{fd, POLLIN, 0};
      if (::poll(&pf, 1, 50) > 0) {
        const ssize_t k = ::read(fd, p, n);
        if (k == 0)
          throw std::runtime_error("tcp handshake: peer closed while reading " +
                                   what);
        if (k < 0) {
          if (errno == EINTR || errno == EAGAIN) continue;
          sys_fail("read(" + what + ")");
        }
        p += k;
        n -= static_cast<std::size_t>(k);
      }
      check_deadline(deadline, what);
    }
  }

  static void write_full(int fd, const void* buf, std::size_t n,
                         std::chrono::steady_clock::time_point deadline,
                         const std::string& what) {
    const auto* p = static_cast<const char*>(buf);
    while (n > 0) {
      pollfd pf{fd, POLLOUT, 0};
      if (::poll(&pf, 1, 50) > 0) {
        const ssize_t k = ::write(fd, p, n);
        if (k < 0) {
          if (errno == EINTR || errno == EAGAIN) continue;
          sys_fail("write(" + what + ")");
        }
        p += k;
        n -= static_cast<std::size_t>(k);
      }
      check_deadline(deadline, what);
    }
  }

  void publish_port(int port) const {
    const std::string tmp = opt_.endpoint + ".tmp";
    FILE* f = std::fopen(tmp.c_str(), "w");
    if (f == nullptr) sys_fail("fopen(" + tmp + ")");
    std::fprintf(f, "%d\n", port);
    std::fclose(f);
    if (std::rename(tmp.c_str(), opt_.endpoint.c_str()) != 0)
      sys_fail("rename(port file)");
  }

  [[nodiscard]] int wait_port(
      std::chrono::steady_clock::time_point deadline) const {
    for (;;) {
      FILE* f = std::fopen(opt_.endpoint.c_str(), "r");
      if (f != nullptr) {
        int port = 0;
        const int got = std::fscanf(f, "%d", &port);
        std::fclose(f);
        if (got == 1 && port > 0) return port;
      }
      check_deadline(deadline, "rank 0's port file");
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  }

  void handshake(std::chrono::steady_clock::time_point deadline) {
    if (rank_ == 0) {
      int port = 0;
      const int lfd = make_listener(world_, &port);
      publish_port(port);
      std::vector<std::int32_t> ports(static_cast<std::size_t>(world_), 0);
      for (int i = 0; i < world_ - 1; ++i) {
        const int fd = accept_with_deadline(lfd, deadline);
        Hello h{};
        read_full(fd, &h, sizeof(h), deadline, "HELLO");
        if (h.magic != kHelloMagic || h.rank < 1 || h.rank >= world_ ||
            conns_[static_cast<std::size_t>(h.rank)].fd >= 0)
          throw std::runtime_error("tcp handshake: bad HELLO");
        conns_[static_cast<std::size_t>(h.rank)].fd = fd;
        ports[static_cast<std::size_t>(h.rank)] = h.port;
      }
      for (int p = 1; p < world_; ++p)
        write_full(conns_[static_cast<std::size_t>(p)].fd, ports.data(),
                   ports.size() * sizeof(std::int32_t), deadline, "MAP");
      ::close(lfd);
      return;
    }
    int my_port = 0;
    const int lfd = rank_ + 1 < world_ ? make_listener(world_, &my_port) : -1;
    const int fd0 =
        dial_with_deadline(wait_port(deadline), deadline, "rank 0");
    Hello hello{kHelloMagic, rank_, my_port};
    write_full(fd0, &hello, sizeof(hello), deadline, "HELLO");
    conns_[0].fd = fd0;
    std::vector<std::int32_t> ports(static_cast<std::size_t>(world_), 0);
    read_full(fd0, ports.data(), ports.size() * sizeof(std::int32_t), deadline,
              "MAP");
    for (int q = 1; q < rank_; ++q) {
      const int fd = dial_with_deadline(ports[static_cast<std::size_t>(q)],
                                        deadline,
                                        "rank " + std::to_string(q));
      write_full(fd, &hello, sizeof(hello), deadline, "HELLO");
      conns_[static_cast<std::size_t>(q)].fd = fd;
    }
    for (int i = rank_ + 1; i < world_; ++i) {
      const int fd = accept_with_deadline(lfd, deadline);
      Hello h{};
      read_full(fd, &h, sizeof(h), deadline, "HELLO");
      if (h.magic != kHelloMagic || h.rank <= rank_ || h.rank >= world_ ||
          conns_[static_cast<std::size_t>(h.rank)].fd >= 0)
        throw std::runtime_error("tcp handshake: bad HELLO");
      conns_[static_cast<std::size_t>(h.rank)].fd = fd;
    }
    if (lfd >= 0) ::close(lfd);
  }

  // ---- data path ----

  void wake() const {
    const char b = 1;
    [[maybe_unused]] const auto n = ::write(wake_pipe_[1], &b, 1);
  }

  void report_stopped(int p, int state) {
    Conn& c = conns_[static_cast<std::size_t>(p)];
    if (c.stopped_reported.exchange(true)) return;
    sink_->peer_stopped(p, state);
  }

  /// Tear one connection down (progress thread only). Without a prior
  /// kFin, an EOF/reset means the peer died unannounced: SIGKILL.
  void drop_conn(int p) {
    Conn& c = conns_[static_cast<std::size_t>(p)];
    {
      std::lock_guard lk(c.mu);
      if (c.fd >= 0) {
        ::close(c.fd);
        c.fd = -1;
      }
      c.outbuf.clear();
      c.out_off = 0;
    }
    report_stopped(p, rankstate::kKilled);
  }

  void progress_loop() {
    std::vector<pollfd> pfds;
    std::vector<int> peers;
    std::uint8_t buf[65536];
    while (!stop_.load(std::memory_order_acquire)) {
      pfds.clear();
      peers.clear();
      pfds.push_back({wake_pipe_[0], POLLIN, 0});
      peers.push_back(-1);
      for (int p = 0; p < world_; ++p) {
        if (p == rank_) continue;
        Conn& c = conns_[static_cast<std::size_t>(p)];
        std::lock_guard lk(c.mu);
        if (c.fd < 0) continue;
        short ev = POLLIN;
        if (c.out_off < c.outbuf.size()) ev |= POLLOUT;
        pfds.push_back({c.fd, ev, 0});
        peers.push_back(p);
      }
      if (::poll(pfds.data(), pfds.size(), 50) < 0 && errno != EINTR) break;
      if ((pfds[0].revents & POLLIN) != 0)
        while (::read(wake_pipe_[0], buf, sizeof(buf)) > 0) {
        }
      for (std::size_t i = 1; i < pfds.size(); ++i) {
        const int p = peers[i];
        if ((pfds[i].revents & POLLOUT) != 0 && !write_some(p)) continue;
        if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0)
          read_some(p, buf, sizeof(buf));
      }
    }
  }

  /// Drain some outbound bytes. Returns false if the connection died.
  bool write_some(int p) {
    Conn& c = conns_[static_cast<std::size_t>(p)];
    std::unique_lock lk(c.mu);
    while (c.fd >= 0 && c.out_off < c.outbuf.size()) {
      const ssize_t k = ::write(c.fd, c.outbuf.data() + c.out_off,
                                c.outbuf.size() - c.out_off);
      if (k > 0) {
        c.out_off += static_cast<std::size_t>(k);
        continue;
      }
      if (k < 0 && (errno == EAGAIN || errno == EINTR)) break;
      lk.unlock();
      drop_conn(p);
      return false;
    }
    if (c.out_off == c.outbuf.size()) {
      c.outbuf.clear();
      c.out_off = 0;
    }
    return true;
  }

  void read_some(int p, std::uint8_t* buf, std::size_t cap) {
    Conn& c = conns_[static_cast<std::size_t>(p)];
    for (;;) {
      int fd;
      {
        std::lock_guard lk(c.mu);
        fd = c.fd;
      }
      if (fd < 0) return;
      const ssize_t k = ::read(fd, buf, cap);
      if (k > 0) {
        c.inbuf.insert(c.inbuf.end(), buf, buf + k);
        std::size_t off = 0;
        for (;;) {
          Frame f;
          const auto used =
              wire::decode_frame(c.inbuf.data() + off, c.inbuf.size() - off, f);
          if (used == 0) break;
          off += used;
          if (f.type == Frame::kFin)
            report_stopped(p, static_cast<int>(f.seq));
          else
            sink_->deliver(std::move(f));
        }
        if (off > 0) c.inbuf.erase(c.inbuf.begin(), c.inbuf.begin() + off);
        continue;
      }
      if (k < 0 && (errno == EAGAIN || errno == EINTR)) return;
      // EOF or reset. After a kFin this is the orderly goodbye; without
      // one the peer was killed.
      drop_conn(p);
      return;
    }
  }

  void teardown() {
    if (progress_.joinable()) {
      stop_.store(true, std::memory_order_release);
      wake();
      progress_.join();
    }
    for (auto& c : conns_) {
      std::lock_guard lk(c.mu);
      if (c.fd >= 0) {
        ::close(c.fd);
        c.fd = -1;
      }
    }
    for (int i = 0; i < 2; ++i)
      if (wake_pipe_[i] >= 0) {
        ::close(wake_pipe_[i]);
        wake_pipe_[i] = -1;
      }
    if (rank_ == 0) std::remove(opt_.endpoint.c_str());
  }

  TransportOptions opt_;
  int world_;
  int rank_;
  Sink* sink_ = nullptr;
  std::vector<Conn> conns_;
  int wake_pipe_[2] = {-1, -1};
  std::atomic<bool> stop_{false};
  std::thread progress_;
};

}  // namespace

std::unique_ptr<Transport> make_tcp_transport(const TransportOptions& opt) {
  return std::make_unique<TcpTransport>(opt);
}

}  // namespace pdc::mp
