#include "pdc/memsim/paging.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace pdc::memsim {

std::string_view page_replacement_name(PageReplacement p) {
  switch (p) {
    case PageReplacement::kFifo: return "FIFO";
    case PageReplacement::kLru: return "LRU";
    case PageReplacement::kClock: return "Clock";
    case PageReplacement::kOptimal: return "Optimal";
  }
  return "?";
}

namespace {

PagingResult simulate_fifo(std::span<const std::uint64_t> refs,
                           std::size_t frames) {
  PagingResult r;
  std::unordered_set<std::uint64_t> resident;
  std::deque<std::uint64_t> order;
  for (auto page : refs) {
    ++r.references;
    if (resident.contains(page)) continue;
    ++r.faults;
    if (resident.size() == frames) {
      resident.erase(order.front());
      order.pop_front();
      ++r.evictions;
    }
    resident.insert(page);
    order.push_back(page);
  }
  return r;
}

PagingResult simulate_lru(std::span<const std::uint64_t> refs,
                          std::size_t frames) {
  PagingResult r;
  std::unordered_map<std::uint64_t, std::uint64_t> last_use;
  std::uint64_t tick = 0;
  for (auto page : refs) {
    ++r.references;
    ++tick;
    if (auto it = last_use.find(page); it != last_use.end()) {
      it->second = tick;
      continue;
    }
    ++r.faults;
    if (last_use.size() == frames) {
      auto victim = last_use.begin();
      for (auto it = last_use.begin(); it != last_use.end(); ++it)
        if (it->second < victim->second) victim = it;
      last_use.erase(victim);
      ++r.evictions;
    }
    last_use[page] = tick;
  }
  return r;
}

PagingResult simulate_clock(std::span<const std::uint64_t> refs,
                            std::size_t frames) {
  PagingResult r;
  struct Frame {
    std::uint64_t page = 0;
    bool used = false;
    bool valid = false;
  };
  std::vector<Frame> frame(frames);
  std::unordered_map<std::uint64_t, std::size_t> where;
  std::size_t hand = 0;
  for (auto page : refs) {
    ++r.references;
    if (auto it = where.find(page); it != where.end()) {
      frame[it->second].used = true;  // second chance
      continue;
    }
    ++r.faults;
    // Advance the hand to a frame with used == false.
    while (frame[hand].valid && frame[hand].used) {
      frame[hand].used = false;
      hand = (hand + 1) % frames;
    }
    if (frame[hand].valid) {
      where.erase(frame[hand].page);
      ++r.evictions;
    }
    frame[hand] = {page, true, true};
    where[page] = hand;
    hand = (hand + 1) % frames;
  }
  return r;
}

PagingResult simulate_optimal(std::span<const std::uint64_t> refs,
                              std::size_t frames) {
  // Precompute, for each position, the next use of that page.
  constexpr std::size_t kNever = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> next_use(refs.size(), kNever);
  std::unordered_map<std::uint64_t, std::size_t> next_seen;
  for (std::size_t i = refs.size(); i-- > 0;) {
    if (auto it = next_seen.find(refs[i]); it != next_seen.end())
      next_use[i] = it->second;
    next_seen[refs[i]] = i;
  }

  PagingResult r;
  std::unordered_map<std::uint64_t, std::size_t> resident;  // page -> next use
  for (std::size_t i = 0; i < refs.size(); ++i) {
    const auto page = refs[i];
    ++r.references;
    if (auto it = resident.find(page); it != resident.end()) {
      it->second = next_use[i];
      continue;
    }
    ++r.faults;
    if (resident.size() == frames) {
      // Evict the page used farthest in the future (or never again).
      auto victim = resident.begin();
      for (auto it = resident.begin(); it != resident.end(); ++it)
        if (it->second > victim->second) victim = it;
      resident.erase(victim);
      ++r.evictions;
    }
    resident[page] = next_use[i];
  }
  return r;
}

}  // namespace

PagingResult simulate_paging(std::span<const std::uint64_t> refs,
                             std::size_t frames, PageReplacement policy) {
  if (frames == 0) throw std::invalid_argument("frames must be > 0");
  switch (policy) {
    case PageReplacement::kFifo: return simulate_fifo(refs, frames);
    case PageReplacement::kLru: return simulate_lru(refs, frames);
    case PageReplacement::kClock: return simulate_clock(refs, frames);
    case PageReplacement::kOptimal: return simulate_optimal(refs, frames);
  }
  throw std::logic_error("unreachable");
}

std::vector<std::uint64_t> belady_reference_string() {
  return {1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5};
}

Tlb::Tlb(std::size_t entries, std::size_t page_size)
    : page_size_(page_size), entries_(entries) {
  if (entries == 0) throw std::invalid_argument("entries must be > 0");
  if (page_size == 0) throw std::invalid_argument("page_size must be > 0");
}

bool Tlb::lookup(std::uint64_t vaddr) {
  ++tick_;
  const std::uint64_t page = vaddr / page_size_;
  for (auto& e : entries_) {
    if (e.valid && e.page == page) {
      e.last_use = tick_;
      ++hits_;
      return true;
    }
  }
  ++misses_;
  // Fill: LRU victim (invalid entries have last_use 0, chosen first).
  auto victim = entries_.begin();
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (!it->valid) {
      victim = it;
      break;
    }
    if (it->last_use < victim->last_use) victim = it;
  }
  *victim = {page, tick_, true};
  return false;
}

void Tlb::flush() {
  for (auto& e : entries_) e.valid = false;
}

}  // namespace pdc::memsim
