#include "pdc/memsim/trace.hpp"

#include <stdexcept>

namespace pdc::memsim {

Trace matrix_row_major(std::size_t rows, std::size_t cols,
                       std::size_t elem_size, Address base, bool writes) {
  if (elem_size == 0) throw std::invalid_argument("elem_size must be > 0");
  Trace t;
  t.reserve(rows * cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      t.push_back({base + (r * cols + c) * elem_size, writes});
  return t;
}

Trace matrix_col_major(std::size_t rows, std::size_t cols,
                       std::size_t elem_size, Address base, bool writes) {
  if (elem_size == 0) throw std::invalid_argument("elem_size must be > 0");
  Trace t;
  t.reserve(rows * cols);
  for (std::size_t c = 0; c < cols; ++c)
    for (std::size_t r = 0; r < rows; ++r)
      t.push_back({base + (r * cols + c) * elem_size, writes});
  return t;
}

Trace strided(std::size_t count, std::size_t stride_bytes, Address base,
              bool writes) {
  if (stride_bytes == 0) throw std::invalid_argument("stride must be > 0");
  Trace t;
  t.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    t.push_back({base + i * stride_bytes, writes});
  return t;
}

Trace repeated_sweep(std::size_t bytes, std::size_t line, int passes,
                     Address base) {
  if (line == 0) throw std::invalid_argument("line must be > 0");
  if (passes < 1) throw std::invalid_argument("passes must be >= 1");
  Trace t;
  const std::size_t refs = bytes / line;
  t.reserve(refs * static_cast<std::size_t>(passes));
  for (int p = 0; p < passes; ++p)
    for (std::size_t i = 0; i < refs; ++i)
      t.push_back({base + i * line, false});
  return t;
}

Trace uniform_random(std::size_t count, std::size_t span_bytes,
                     std::uint64_t seed, Address base,
                     double write_fraction) {
  if (span_bytes == 0) throw std::invalid_argument("span must be > 0");
  if (write_fraction < 0.0 || write_fraction > 1.0)
    throw std::invalid_argument("write_fraction must be in [0,1]");
  std::uint64_t s = seed ? seed : 0x9E3779B97F4A7C15ull;
  auto next = [&s] {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  };
  Trace t;
  t.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const Address a = base + next() % span_bytes;
    const bool w =
        write_fraction > 0.0 &&
        static_cast<double>(next() % 10000) < write_fraction * 10000.0;
    t.push_back({a, w});
  }
  return t;
}

CacheStats run_trace(Cache& cache, const Trace& trace) {
  for (const auto& ref : trace) cache.access(ref.addr, ref.is_write);
  return cache.stats();
}

void run_trace(Hierarchy& hierarchy, const Trace& trace) {
  for (const auto& ref : trace) hierarchy.access(ref.addr, ref.is_write);
}

}  // namespace pdc::memsim
