#include "pdc/memsim/cache.hpp"

#include <bit>
#include <stdexcept>

namespace pdc::memsim {

std::string_view replacement_name(Replacement r) {
  switch (r) {
    case Replacement::kLru: return "LRU";
    case Replacement::kFifo: return "FIFO";
    case Replacement::kRandom: return "Random";
  }
  return "?";
}

void CacheConfig::validate() const {
  if (total_size == 0 || !std::has_single_bit(total_size))
    throw std::invalid_argument("total_size must be a power of two");
  if (line_size == 0 || !std::has_single_bit(line_size))
    throw std::invalid_argument("line_size must be a power of two");
  if (line_size > total_size)
    throw std::invalid_argument("line_size must be <= total_size");
  if (associativity == 0 || !std::has_single_bit(associativity))
    throw std::invalid_argument("associativity must be a power of two");
  if (associativity > num_lines())
    throw std::invalid_argument("associativity exceeds number of lines");
}

AddressParts split_address(Address addr, const CacheConfig& cfg) {
  cfg.validate();
  const int offset_bits = std::countr_zero(cfg.line_size);
  const int set_bits = std::countr_zero(cfg.num_sets());
  AddressParts p;
  p.offset = static_cast<std::size_t>(addr & (cfg.line_size - 1));
  p.set = static_cast<std::size_t>((addr >> offset_bits) &
                                   (cfg.num_sets() - 1));
  p.tag = addr >> (offset_bits + set_bits);
  return p;
}

Cache::Cache(CacheConfig cfg, std::uint32_t rng_seed)
    : cfg_(cfg), rng_state_(rng_seed == 0 ? 1 : rng_seed) {
  cfg_.validate();
  lines_.resize(cfg_.num_lines());
}

std::size_t Cache::victim_way(std::size_t set) {
  const std::size_t base = set * cfg_.associativity;
  // Prefer an invalid way.
  for (std::size_t w = 0; w < cfg_.associativity; ++w)
    if (!lines_[base + w].valid) return w;

  switch (cfg_.replacement) {
    case Replacement::kLru: {
      std::size_t victim = 0;
      for (std::size_t w = 1; w < cfg_.associativity; ++w)
        if (lines_[base + w].last_use < lines_[base + victim].last_use)
          victim = w;
      return victim;
    }
    case Replacement::kFifo: {
      std::size_t victim = 0;
      for (std::size_t w = 1; w < cfg_.associativity; ++w)
        if (lines_[base + w].fill_time < lines_[base + victim].fill_time)
          victim = w;
      return victim;
    }
    case Replacement::kRandom: {
      // xorshift64 — deterministic given the seed.
      rng_state_ ^= rng_state_ << 13;
      rng_state_ ^= rng_state_ >> 7;
      rng_state_ ^= rng_state_ << 17;
      return static_cast<std::size_t>(rng_state_ % cfg_.associativity);
    }
  }
  return 0;
}

void Cache::fill_line(Address addr, bool dirty, bool prefetched) {
  const AddressParts p = split_address(addr, cfg_);
  const std::size_t base = p.set * cfg_.associativity;
  // Already resident? Nothing to do.
  for (std::size_t w = 0; w < cfg_.associativity; ++w) {
    Line& line = lines_[base + w];
    if (line.valid && line.tag == p.tag) {
      if (dirty) line.dirty = true;
      return;
    }
  }
  const std::size_t w = victim_way(p.set);
  Line& line = lines_[base + w];
  if (line.valid) {
    ++stats_.evictions;
    if (line.dirty) ++stats_.writebacks;
  }
  line.valid = true;
  line.dirty = dirty;
  line.prefetched = prefetched;
  line.tag = p.tag;
  line.last_use = tick_;
  line.fill_time = tick_;
  if (prefetched) ++stats_.prefetch_fills;
}

bool Cache::access(Address addr, bool is_write) {
  ++tick_;
  ++stats_.accesses;
  const AddressParts p = split_address(addr, cfg_);
  const std::size_t base = p.set * cfg_.associativity;

  for (std::size_t w = 0; w < cfg_.associativity; ++w) {
    Line& line = lines_[base + w];
    if (line.valid && line.tag == p.tag) {
      ++stats_.hits;
      if (line.prefetched) {
        ++stats_.prefetch_useful;
        line.prefetched = false;
      }
      line.last_use = tick_;
      if (is_write) line.dirty = true;
      return true;
    }
  }

  ++stats_.misses;
  if (is_write && !cfg_.write_allocate) return false;  // write-around

  fill_line(addr, is_write, /*prefetched=*/false);
  if (cfg_.next_line_prefetch) {
    const Address next_line = addr + cfg_.line_size;
    fill_line(next_line, false, /*prefetched=*/true);
  }
  return false;
}

bool Cache::contains(Address addr) const {
  const AddressParts p = split_address(addr, cfg_);
  const std::size_t base = p.set * cfg_.associativity;
  for (std::size_t w = 0; w < cfg_.associativity; ++w) {
    const Line& line = lines_[base + w];
    if (line.valid && line.tag == p.tag) return true;
  }
  return false;
}

bool Cache::invalidate(Address addr) {
  const AddressParts p = split_address(addr, cfg_);
  const std::size_t base = p.set * cfg_.associativity;
  for (std::size_t w = 0; w < cfg_.associativity; ++w) {
    Line& line = lines_[base + w];
    if (line.valid && line.tag == p.tag) {
      const bool was_dirty = line.dirty;
      line.valid = false;
      line.dirty = false;
      return was_dirty;
    }
  }
  return false;
}

void Cache::flush() {
  for (auto& line : lines_) {
    line.valid = false;
    line.dirty = false;
  }
}

Hierarchy::Hierarchy(
    std::vector<std::pair<CacheConfig, LevelLatency>> levels,
    double memory_cycles)
    : memory_cycles_(memory_cycles) {
  if (levels.empty())
    throw std::invalid_argument("hierarchy needs at least one level");
  for (auto& [cfg, lat] : levels) {
    caches_.emplace_back(cfg);
    latencies_.push_back(lat);
  }
}

void Hierarchy::access(Address addr, bool is_write) {
  for (auto& cache : caches_) {
    if (cache.access(addr, is_write)) return;  // hit at this level
  }
}

const CacheStats& Hierarchy::level_stats(std::size_t level) const {
  if (level >= caches_.size()) throw std::out_of_range("hierarchy level");
  return caches_[level].stats();
}

double Hierarchy::amat() const {
  // Fold from the last level backwards:
  // amat_i = hit_i + miss_rate_i * amat_{i+1}; amat_{n} = memory.
  double amat = memory_cycles_;
  for (std::size_t i = caches_.size(); i-- > 0;) {
    amat = latencies_[i].hit_cycles + caches_[i].stats().miss_rate() * amat;
  }
  return amat;
}

}  // namespace pdc::memsim
