#pragma once
// Trace-driven set-associative cache model (CS31 "The Memory Hierarchy"
// unit): address decomposition into tag/set/offset, LRU/FIFO/Random
// replacement, write-back + write-allocate, and multi-level hierarchies
// with AMAT (average memory access time) accounting.
//
// All quantities are *model counts*, not wall-clock measurements — the lab
// asks students to predict miss counts by hand and check them against the
// simulator.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace pdc::memsim {

using Address = std::uint64_t;

enum class Replacement { kLru, kFifo, kRandom };

[[nodiscard]] std::string_view replacement_name(Replacement r);

/// Geometry + policy of one cache level. All sizes in bytes; sizes and
/// associativity must be powers of two, with line_size <= total_size and
/// associativity <= total_size / line_size.
struct CacheConfig {
  std::size_t total_size = 32 * 1024;
  std::size_t line_size = 64;
  std::size_t associativity = 4;  ///< ways per set
  Replacement replacement = Replacement::kLru;
  bool write_allocate = true;     ///< fetch line on write miss
  /// Next-line prefetch: on a demand miss, also fill line+1. Helps
  /// sequential streams, pollutes the cache on random access — the
  /// trade-off bench_table2_memhier quantifies.
  bool next_line_prefetch = false;

  [[nodiscard]] std::size_t num_lines() const { return total_size / line_size; }
  [[nodiscard]] std::size_t num_sets() const {
    return num_lines() / associativity;
  }
  /// Throws std::invalid_argument describing the first violated constraint.
  void validate() const;
};

/// Decomposed address for a given cache geometry.
struct AddressParts {
  Address tag = 0;
  std::size_t set = 0;
  std::size_t offset = 0;
};

[[nodiscard]] AddressParts split_address(Address addr, const CacheConfig& cfg);

/// Hit/miss counters for one cache.
struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;  ///< dirty lines evicted
  std::uint64_t prefetch_fills = 0;   ///< lines brought in by prefetch
  std::uint64_t prefetch_useful = 0;  ///< prefetched lines later hit

  [[nodiscard]] double miss_rate() const {
    return accesses == 0 ? 0.0
                         : static_cast<double>(misses) /
                               static_cast<double>(accesses);
  }
  [[nodiscard]] double hit_rate() const { return 1.0 - miss_rate(); }
};

/// One level of set-associative cache.
class Cache {
 public:
  explicit Cache(CacheConfig cfg, std::uint32_t rng_seed = 1);

  /// Simulate one access; returns true on hit. Write misses allocate when
  /// cfg.write_allocate, else write around (counted as a miss, no fill).
  bool access(Address addr, bool is_write);

  /// True iff the line containing addr is currently resident.
  [[nodiscard]] bool contains(Address addr) const;

  /// Invalidate the line containing addr if resident. Returns whether it
  /// was dirty (the coherence layer needs this for flushes).
  bool invalidate(Address addr);

  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  [[nodiscard]] const CacheConfig& config() const { return cfg_; }
  void reset_stats() { stats_ = {}; }
  /// Drop all cached lines (cold restart) and keep stats.
  void flush();

 private:
  struct Line {
    bool valid = false;
    bool dirty = false;
    bool prefetched = false;      // filled by prefetch, not yet demanded
    Address tag = 0;
    std::uint64_t last_use = 0;   // LRU timestamp
    std::uint64_t fill_time = 0;  // FIFO timestamp
  };

  /// Fill the line containing `addr` (no hit/miss accounting).
  void fill_line(Address addr, bool dirty, bool prefetched);

  [[nodiscard]] std::size_t victim_way(std::size_t set);

  CacheConfig cfg_;
  std::vector<Line> lines_;  // num_sets * associativity, set-major
  CacheStats stats_;
  std::uint64_t tick_ = 0;
  std::uint64_t rng_state_;
};

/// Latency model for one level of a hierarchy (cycles).
struct LevelLatency {
  double hit_cycles = 4;
};

/// Inclusive-stats multi-level hierarchy: L1 -> L2 -> ... -> memory.
/// Each access walks levels until a hit; lower levels only see upper-level
/// misses. AMAT = L1.hit + L1.miss_rate*(L2.hit + L2.miss_rate*(...)).
class Hierarchy {
 public:
  /// `levels` are (config, latency) pairs ordered L1 first;
  /// `memory_cycles` is the terminal miss penalty.
  Hierarchy(std::vector<std::pair<CacheConfig, LevelLatency>> levels,
            double memory_cycles);

  void access(Address addr, bool is_write);

  [[nodiscard]] std::size_t depth() const { return caches_.size(); }
  [[nodiscard]] const CacheStats& level_stats(std::size_t level) const;

  /// Average memory access time in cycles, from the recorded miss rates.
  [[nodiscard]] double amat() const;

 private:
  std::vector<Cache> caches_;
  std::vector<LevelLatency> latencies_;
  double memory_cycles_;
};

}  // namespace pdc::memsim
