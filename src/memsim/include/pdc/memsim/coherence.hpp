#pragma once
// Snooping cache-coherence simulator — MSI and MESI — for the CS31
// "Multicore, Buses, Coherency" unit and the CS75 false-sharing topic.
//
// Each core has an (unbounded) private cache tracked at line granularity;
// the object of study is the *protocol traffic*: bus reads, read-exclusives,
// upgrades, writebacks, and invalidations. False sharing shows up as
// invalidation storms on a line that distinct cores never logically share.

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "pdc/memsim/trace.hpp"

namespace pdc::memsim {

enum class Protocol { kMsi, kMesi };

[[nodiscard]] std::string_view protocol_name(Protocol p);

/// Per-line state (kExclusive is only reachable under MESI).
enum class LineState : std::uint8_t {
  kInvalid,
  kShared,
  kExclusive,
  kModified,
};

[[nodiscard]] char line_state_letter(LineState s);

/// Aggregate protocol traffic counters.
struct CoherenceStats {
  std::uint64_t bus_reads = 0;       ///< BusRd (read miss)
  std::uint64_t bus_read_x = 0;      ///< BusRdX (write miss)
  std::uint64_t bus_upgrades = 0;    ///< BusUpgr (S -> M without data)
  std::uint64_t writebacks = 0;      ///< M line flushed for another core
  std::uint64_t invalidations = 0;   ///< lines invalidated in peers
  std::uint64_t silent_upgrades = 0; ///< E -> M with no bus traffic (MESI)

  [[nodiscard]] std::uint64_t bus_transactions() const {
    return bus_reads + bus_read_x + bus_upgrades;
  }
};

/// P cores snooping one shared bus.
class SnoopBus {
 public:
  SnoopBus(int cores, Protocol protocol, std::size_t line_size = 64);

  void read(int core, Address addr);
  void write(int core, Address addr);

  /// Current state of the line containing `addr` in `core`'s cache.
  [[nodiscard]] LineState state(int core, Address addr) const;

  [[nodiscard]] const CoherenceStats& stats() const { return stats_; }
  [[nodiscard]] int cores() const { return static_cast<int>(caches_.size()); }
  [[nodiscard]] std::size_t line_size() const { return line_size_; }

  /// Per-core cache hits (access found line not-Invalid and with sufficient
  /// permission) and misses.
  [[nodiscard]] std::uint64_t hits(int core) const;
  [[nodiscard]] std::uint64_t misses(int core) const;

  /// The single-writer/multiple-reader protocol invariant: for every
  /// line, at most one core holds it M or E, and an M/E holder excludes
  /// every other state but Invalid. Tests call this after every workload.
  [[nodiscard]] bool invariants_hold() const;

 private:
  [[nodiscard]] Address line_of(Address addr) const {
    return addr / line_size_;
  }
  void check_core(int core) const;

  Protocol protocol_;
  std::size_t line_size_;
  std::vector<std::unordered_map<Address, LineState>> caches_;
  std::vector<std::uint64_t> hits_;
  std::vector<std::uint64_t> misses_;
  CoherenceStats stats_;
};

/// A memory reference attributed to a core, for multi-core traces.
struct CoreRef {
  int core = 0;
  MemRef ref;
};

/// The false-sharing microbenchmark as a trace: each core repeatedly
/// increments (read+write) its own counter; counters are `stride_bytes`
/// apart starting at `base`. Cores are interleaved round-robin, the
/// worst case for ping-ponging.
///
/// stride < line_size  => false sharing (counters share a line);
/// stride >= line_size => padded, each counter has a private line.
[[nodiscard]] std::vector<CoreRef> interleaved_counter_trace(
    int cores, int iterations, std::size_t stride_bytes, Address base = 0);

/// Feed a multi-core trace through the bus.
void run_trace(SnoopBus& bus, const std::vector<CoreRef>& trace);

}  // namespace pdc::memsim
