#pragma once
// Demand-paging and TLB simulation (CS31 "Operating Systems: Virtual
// Memory" topics): page-replacement policies over a reference string,
// including the Optimal offline policy as a lower bound, plus a
// fully-associative LRU TLB.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace pdc::memsim {

enum class PageReplacement { kFifo, kLru, kClock, kOptimal };

[[nodiscard]] std::string_view page_replacement_name(PageReplacement p);

struct PagingResult {
  std::uint64_t references = 0;
  std::uint64_t faults = 0;
  std::uint64_t evictions = 0;

  [[nodiscard]] double fault_rate() const {
    return references == 0
               ? 0.0
               : static_cast<double>(faults) / static_cast<double>(references);
  }
};

/// Simulate demand paging of `refs` (page numbers) in `frames` physical
/// frames under `policy`. Optimal requires the whole string up front (it is
/// an offline bound).
[[nodiscard]] PagingResult simulate_paging(std::span<const std::uint64_t> refs,
                                           std::size_t frames,
                                           PageReplacement policy);

/// The classic reference string exhibiting Belady's anomaly under FIFO:
/// 1,2,3,4,1,2,5,1,2,3,4,5 — more frames (4 vs 3) yields MORE faults.
[[nodiscard]] std::vector<std::uint64_t> belady_reference_string();

/// Fully-associative LRU translation lookaside buffer.
class Tlb {
 public:
  Tlb(std::size_t entries, std::size_t page_size);

  /// Translate: true on TLB hit; on miss the mapping is filled (page-table
  /// walk assumed to succeed).
  bool lookup(std::uint64_t vaddr);

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] double hit_rate() const {
    const auto total = hits_ + misses_;
    return total == 0 ? 0.0
                      : static_cast<double>(hits_) / static_cast<double>(total);
  }
  void flush();  ///< e.g. on context switch

 private:
  struct Entry {
    std::uint64_t page = 0;
    std::uint64_t last_use = 0;
    bool valid = false;
  };
  std::size_t page_size_;
  std::vector<Entry> entries_;
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace pdc::memsim
