#pragma once
// Reference-trace generators for the cache model: the access patterns the
// CS31 memory-hierarchy lab studies (row- vs column-major matrix walks,
// strided scans, repeated working sets) expressed as explicit address
// streams.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "pdc/memsim/cache.hpp"

namespace pdc::memsim {

/// One memory reference.
struct MemRef {
  Address addr = 0;
  bool is_write = false;
};

using Trace = std::vector<MemRef>;

/// Row-major walk of an rows x cols matrix of `elem_size`-byte elements
/// starting at `base`: the unit-stride pattern with maximal spatial
/// locality.
[[nodiscard]] Trace matrix_row_major(std::size_t rows, std::size_t cols,
                                     std::size_t elem_size, Address base = 0,
                                     bool writes = false);

/// Column-major walk of the SAME row-major-laid-out matrix: stride of
/// cols*elem_size bytes, the classic cache-hostile traversal.
[[nodiscard]] Trace matrix_col_major(std::size_t rows, std::size_t cols,
                                     std::size_t elem_size, Address base = 0,
                                     bool writes = false);

/// Linear scan of `count` elements with a byte stride.
[[nodiscard]] Trace strided(std::size_t count, std::size_t stride_bytes,
                            Address base = 0, bool writes = false);

/// `passes` sequential sweeps over a working set of `bytes` bytes at
/// `line`-sized granularity: hit rate flips from ~0 to ~1 when the working
/// set fits in the cache.
[[nodiscard]] Trace repeated_sweep(std::size_t bytes, std::size_t line,
                                   int passes, Address base = 0);

/// Uniform-random references over `span_bytes` (deterministic for a seed).
[[nodiscard]] Trace uniform_random(std::size_t count, std::size_t span_bytes,
                                   std::uint64_t seed, Address base = 0,
                                   double write_fraction = 0.0);

/// Run a trace through a cache; returns final stats (cache keeps them too).
CacheStats run_trace(Cache& cache, const Trace& trace);

/// Run a trace through a multi-level hierarchy.
void run_trace(Hierarchy& hierarchy, const Trace& trace);

}  // namespace pdc::memsim
