#include "pdc/memsim/coherence.hpp"

#include <stdexcept>

namespace pdc::memsim {

std::string_view protocol_name(Protocol p) {
  return p == Protocol::kMsi ? "MSI" : "MESI";
}

char line_state_letter(LineState s) {
  switch (s) {
    case LineState::kInvalid: return 'I';
    case LineState::kShared: return 'S';
    case LineState::kExclusive: return 'E';
    case LineState::kModified: return 'M';
  }
  return '?';
}

SnoopBus::SnoopBus(int cores, Protocol protocol, std::size_t line_size)
    : protocol_(protocol), line_size_(line_size) {
  if (cores < 1) throw std::invalid_argument("need >= 1 core");
  if (line_size_ == 0) throw std::invalid_argument("line_size must be > 0");
  caches_.resize(static_cast<std::size_t>(cores));
  hits_.resize(static_cast<std::size_t>(cores), 0);
  misses_.resize(static_cast<std::size_t>(cores), 0);
}

void SnoopBus::check_core(int core) const {
  if (core < 0 || core >= cores()) throw std::out_of_range("core id");
}

LineState SnoopBus::state(int core, Address addr) const {
  check_core(core);
  const auto& cache = caches_[static_cast<std::size_t>(core)];
  const auto it = cache.find(line_of(addr));
  return it == cache.end() ? LineState::kInvalid : it->second;
}

void SnoopBus::read(int core, Address addr) {
  check_core(core);
  const Address line = line_of(addr);
  auto& mine = caches_[static_cast<std::size_t>(core)];
  const LineState st = state(core, addr);

  if (st != LineState::kInvalid) {  // M/E/S all satisfy a read locally
    ++hits_[static_cast<std::size_t>(core)];
    return;
  }

  ++misses_[static_cast<std::size_t>(core)];
  ++stats_.bus_reads;

  // Snoop: any peer in M must flush; peers in M/E degrade to S.
  bool someone_has_it = false;
  for (int c = 0; c < cores(); ++c) {
    if (c == core) continue;
    auto& peer = caches_[static_cast<std::size_t>(c)];
    auto it = peer.find(line);
    if (it == peer.end() || it->second == LineState::kInvalid) continue;
    someone_has_it = true;
    if (it->second == LineState::kModified) ++stats_.writebacks;
    it->second = LineState::kShared;
  }

  mine[line] = (protocol_ == Protocol::kMesi && !someone_has_it)
                   ? LineState::kExclusive
                   : LineState::kShared;
}

void SnoopBus::write(int core, Address addr) {
  check_core(core);
  const Address line = line_of(addr);
  auto& mine = caches_[static_cast<std::size_t>(core)];
  const LineState st = state(core, addr);

  switch (st) {
    case LineState::kModified:
      ++hits_[static_cast<std::size_t>(core)];
      return;
    case LineState::kExclusive:
      // MESI: silent upgrade, no bus transaction.
      ++hits_[static_cast<std::size_t>(core)];
      ++stats_.silent_upgrades;
      mine[line] = LineState::kModified;
      return;
    case LineState::kShared:
      // Upgrade: invalidate peers, no data transfer needed.
      ++hits_[static_cast<std::size_t>(core)];
      ++stats_.bus_upgrades;
      break;
    case LineState::kInvalid:
      ++misses_[static_cast<std::size_t>(core)];
      ++stats_.bus_read_x;
      break;
  }

  for (int c = 0; c < cores(); ++c) {
    if (c == core) continue;
    auto& peer = caches_[static_cast<std::size_t>(c)];
    auto it = peer.find(line);
    if (it == peer.end() || it->second == LineState::kInvalid) continue;
    if (it->second == LineState::kModified) ++stats_.writebacks;
    it->second = LineState::kInvalid;
    ++stats_.invalidations;
  }

  mine[line] = LineState::kModified;
}

std::uint64_t SnoopBus::hits(int core) const {
  check_core(core);
  return hits_[static_cast<std::size_t>(core)];
}

std::uint64_t SnoopBus::misses(int core) const {
  check_core(core);
  return misses_[static_cast<std::size_t>(core)];
}

bool SnoopBus::invariants_hold() const {
  // Collect every line any core has seen.
  std::unordered_map<Address, int> exclusive_holders;  // line -> count M/E
  std::unordered_map<Address, int> sharers;            // line -> count S
  for (const auto& cache : caches_) {
    for (const auto& [line, st] : cache) {
      if (st == LineState::kModified || st == LineState::kExclusive)
        ++exclusive_holders[line];
      if (st == LineState::kShared) ++sharers[line];
    }
  }
  for (const auto& [line, n] : exclusive_holders) {
    if (n > 1) return false;                      // two writers/owners
    if (sharers.contains(line) && sharers[line] > 0) return false;
  }
  return true;
}

std::vector<CoreRef> interleaved_counter_trace(int cores, int iterations,
                                               std::size_t stride_bytes,
                                               Address base) {
  if (cores < 1) throw std::invalid_argument("need >= 1 core");
  if (iterations < 0) throw std::invalid_argument("iterations must be >= 0");
  if (stride_bytes == 0) throw std::invalid_argument("stride must be > 0");
  std::vector<CoreRef> t;
  t.reserve(static_cast<std::size_t>(cores) *
            static_cast<std::size_t>(iterations) * 2);
  for (int i = 0; i < iterations; ++i) {
    for (int c = 0; c < cores; ++c) {
      const Address a = base + static_cast<Address>(c) * stride_bytes;
      t.push_back({c, {a, false}});  // load counter
      t.push_back({c, {a, true}});   // store counter+1
    }
  }
  return t;
}

void run_trace(SnoopBus& bus, const std::vector<CoreRef>& trace) {
  for (const auto& cr : trace) {
    if (cr.ref.is_write) {
      bus.write(cr.core, cr.ref.addr);
    } else {
      bus.read(cr.core, cr.ref.addr);
    }
  }
}

}  // namespace pdc::memsim
