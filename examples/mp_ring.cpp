// Message-passing demo (the CS87 MPI lab): a token ring, then the
// collective patterns with traffic accounting.
//
//   build/examples/mp_ring [ranks]

#include <cstdlib>
#include <iostream>
#include <mutex>

#include "pdc/mp/comm.hpp"
#include "pdc/perf/table.hpp"

int main(int argc, char** argv) {
  const int p = argc > 1 ? std::atoi(argv[1]) : 4;

  // --- token ring: rank 0 injects a token, each rank increments and
  // forwards; rank 0 receives it back after one lap. ---
  {
    pdc::mp::Communicator comm(p);
    std::mutex io;
    comm.run([&](pdc::mp::RankContext& ctx) {
      const int next = (ctx.rank() + 1) % ctx.size();
      const int prev = (ctx.rank() - 1 + ctx.size()) % ctx.size();
      if (ctx.rank() == 0) {
        ctx.send_value(next, 0, 0);
        const auto token = ctx.recv_value(prev, 0);
        std::lock_guard lk(io);
        std::cout << "token completed the ring with value " << token
                  << " (expected " << ctx.size() - 1 << ")\n";
      } else {
        const auto token = ctx.recv_value(prev, 0);
        ctx.send_value(next, 0, token + 1);
      }
    });
    std::cout << "ring traffic: " << comm.traffic().messages
              << " messages\n\n";
  }

  // --- collectives: compare flat vs tree on messages and rounds ---
  pdc::perf::Table table(
      {"collective", "algorithm", "messages", "rounds (critical path)"});
  for (const auto algo :
       {pdc::mp::CollectiveAlgo::kFlat, pdc::mp::CollectiveAlgo::kTree}) {
    const char* name =
        algo == pdc::mp::CollectiveAlgo::kFlat ? "flat" : "tree";
    int rounds = 0;
    if (algo == pdc::mp::CollectiveAlgo::kFlat) {
      rounds = p - 1;  // root sends serially
    } else {
      for (int reach = 1; reach < p; reach *= 2) ++rounds;
    }

    pdc::mp::Communicator comm(p);
    comm.run([&](pdc::mp::RankContext& ctx) {
      (void)ctx.broadcast_value(0, 99, algo);
    });
    table.add_row({"broadcast", name,
                   std::to_string(comm.traffic().messages),
                   std::to_string(rounds)});

    pdc::mp::Communicator comm2(p);
    comm2.run([&](pdc::mp::RankContext& ctx) {
      (void)ctx.reduce(0, ctx.rank(), pdc::mp::ReduceOp::kSum, algo);
    });
    table.add_row({"reduce", name,
                   std::to_string(comm2.traffic().messages),
                   std::to_string(rounds)});
  }
  std::cout << "collectives on " << p << " ranks:\n" << table.str();

  // --- allreduce / allgather / exscan sanity ---
  pdc::mp::Communicator comm(p);
  std::mutex io;
  comm.run([&](pdc::mp::RankContext& ctx) {
    const auto sum = ctx.allreduce(ctx.rank() + 1, pdc::mp::ReduceOp::kSum);
    const auto prefix = ctx.exscan(ctx.rank() + 1, pdc::mp::ReduceOp::kSum);
    if (ctx.rank() == ctx.size() - 1) {
      std::lock_guard lk(io);
      std::cout << "\nallreduce(sum of 1..p) = " << sum
                << ", exscan at last rank = " << prefix << "\n";
    }
  });
  return 0;
}
