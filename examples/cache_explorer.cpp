// Cache explorer — the CS31 memory-hierarchy lab as a command-line tool:
// pick a cache geometry and see exactly how the model behaves on the
// classic access patterns.
//
//   build/examples/cache_explorer [size_kb line_bytes associativity]
//
// Prints: address decomposition for sample addresses, miss tables for
// row/column matrix walks and strided scans, the replacement-policy
// comparison, and the working-set cliff for the chosen geometry.

#include <cstdlib>
#include <iostream>

#include "pdc/memsim/cache.hpp"
#include "pdc/memsim/trace.hpp"
#include "pdc/perf/table.hpp"

namespace pm = pdc::memsim;

int main(int argc, char** argv) {
  pm::CacheConfig cfg;
  cfg.total_size = (argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 16) * 1024;
  cfg.line_size = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 64;
  cfg.associativity = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 4;
  try {
    cfg.validate();
  } catch (const std::exception& e) {
    std::cerr << "bad geometry: " << e.what() << "\n";
    return 1;
  }

  std::cout << "cache: " << cfg.total_size / 1024 << "KB, "
            << cfg.line_size << "B lines, " << cfg.associativity
            << "-way (" << cfg.num_sets() << " sets)\n\n";

  // Address decomposition — what the lab has students do by hand.
  pdc::perf::Table parts({"address", "tag", "set", "offset"});
  for (pm::Address a : {0x0ull, 0x1234ull, 0xBEEFull, 0xDEAD40ull}) {
    const auto p = pm::split_address(a, cfg);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(a));
    parts.add_row({buf, std::to_string(p.tag), std::to_string(p.set),
                   std::to_string(p.offset)});
  }
  std::cout << "address decomposition:\n" << parts.str() << "\n";

  // Traversal experiment at this geometry.
  pdc::perf::Table traverse({"pattern", "accesses", "misses", "miss%"});
  const auto add = [&](const std::string& name, const pm::Trace& trace) {
    pm::Cache cache(cfg);
    const auto s = pm::run_trace(cache, trace);
    traverse.add_row({name, std::to_string(s.accesses),
                      std::to_string(s.misses),
                      pdc::perf::fmt(100 * s.miss_rate(), 2)});
  };
  add("row-major 128x128 doubles", pm::matrix_row_major(128, 128, 8));
  add("col-major 128x128 doubles", pm::matrix_col_major(128, 128, 8));
  add("stride 8B x 8192", pm::strided(8192, 8));
  add("stride 64B x 8192", pm::strided(8192, 64));
  add("random 8192 over 1MB", pm::uniform_random(8192, 1 << 20, 1));
  std::cout << "traversal patterns:\n" << traverse.str() << "\n";

  // Working-set cliff for this cache size.
  pdc::perf::Table cliff({"working set", "re-reference miss%"});
  for (std::size_t ws = cfg.total_size / 4; ws <= cfg.total_size * 4;
       ws *= 2) {
    pm::Cache cache(cfg);
    pm::run_trace(cache, pm::repeated_sweep(ws, cfg.line_size, 1));
    cache.reset_stats();
    pm::run_trace(cache, pm::repeated_sweep(ws, cfg.line_size, 2));
    cliff.add_row({std::to_string(ws / 1024) + "KB",
                   pdc::perf::fmt(100 * cache.stats().miss_rate(), 1)});
  }
  std::cout << "working-set cliff (expect the jump at "
            << cfg.total_size / 1024 << "KB):\n"
            << cliff.str();
  return 0;
}
