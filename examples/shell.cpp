// The CS31 Unix-shell lab on the simulated kernel.
//
//   build/examples/shell                 # run the scripted demo
//   build/examples/shell 'yes hi 3|cat'  # run your own command lines
//
// Supports: pipelines (|), background jobs (&), multiple jobs (;), and the
// standard toy commands (echo, cat, sleep, yes, true, false).

#include <iostream>
#include <string>
#include <vector>

#include "pdc/os/kernel.hpp"
#include "pdc/os/shell.hpp"

namespace {

void run_line(pdc::os::Shell& shell, const std::string& line) {
  std::cout << "swatsh$ " << line << "\n";
  const std::size_t before = shell.kernel().console().size();
  try {
    shell.execute(line);
  } catch (const std::exception& e) {
    std::cout << "swatsh: " << e.what() << "\n";
    return;
  }
  for (std::size_t i = before; i < shell.kernel().console().size(); ++i) {
    const auto& out = shell.kernel().console()[i];
    std::cout << "[pid " << out.pid << "] " << out.text << "\n";
  }
  const auto jobs = shell.active_jobs();
  for (const auto& job : jobs)
    std::cout << "[job " << job.id << "] running in background ("
              << job.pids.size() << " process(es))\n";
}

}  // namespace

int main(int argc, char** argv) {
  pdc::os::Kernel kernel;
  pdc::os::Shell shell(kernel, pdc::os::CommandRegistry::standard());

  std::vector<std::string> script;
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) script.emplace_back(argv[i]);
  } else {
    script = {
        "echo hello from the simulated kernel",
        "yes parallel 3 | cat",
        "sleep 30 &",
        "echo the foreground is not blocked",
        "yes pipe 2 | cat | cat",
        "false",
    };
  }

  for (const auto& line : script) run_line(shell, line);

  shell.wait_all();
  std::cout << "all jobs done at tick " << kernel.now() << "; "
            << kernel.process_count() << " live process(es) remain (init)\n";
  return 0;
}
