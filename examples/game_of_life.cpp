// The CS31 "Parallel Game of Life" lab as a program:
//
//   build/examples/game_of_life [rows cols generations max_threads]
//
// Runs a glider demo (printed), checks that all three engines agree, and
// performs the lab's scalability study on the threaded engine.

#include <cstdlib>
#include <iostream>

#include "pdc/life/engine.hpp"
#include "pdc/life/grid.hpp"
#include "pdc/perf/scalability.hpp"

int main(int argc, char** argv) {
  const std::size_t rows = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 256;
  const std::size_t cols = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 256;
  const int gens = argc > 3 ? std::atoi(argv[3]) : 50;
  const int max_threads = argc > 4 ? std::atoi(argv[4]) : 4;

  // --- visual demo: a glider crossing a small torus ---
  pdc::life::Grid demo(8, 8);
  pdc::life::stamp(demo, pdc::life::glider(), 0, 0);
  std::cout << "glider, generation 0:\n" << demo.to_string() << "\n";
  pdc::life::run_sequential(demo, 4);
  std::cout << "after 4 generations (moved one cell diagonally):\n"
            << demo.to_string() << "\n";

  // --- engine equivalence on the study board ---
  const auto start = pdc::life::random_grid(rows, cols, 0.3, 42);
  pdc::life::Grid seq = start, thr = start, msg = start;
  pdc::life::run_sequential(seq, gens);
  pdc::life::run_threaded(thr, gens, max_threads);
  std::uint64_t messages = 0, words = 0;
  pdc::life::run_message_passing(msg, gens, std::min(max_threads, 4),
                                 &messages, &words);
  std::cout << "engines agree: " << std::boolalpha
            << (seq == thr && thr == msg) << " (population "
            << seq.population() << ")\n";
  std::cout << "message-passing traffic: " << messages << " messages, "
            << words << " cell-words\n\n";

  // --- the lab's scalability study ---
  pdc::perf::StudyConfig cfg;
  cfg.thread_counts.clear();
  for (int t = 1; t <= max_threads; t *= 2) cfg.thread_counts.push_back(t);
  cfg.repetitions = 3;
  const auto study = pdc::perf::run_strong_scaling(cfg, [&](int threads) {
    pdc::life::Grid board = start;
    pdc::life::run_threaded(board, gens, threads);
  });
  std::cout << "threaded Game of Life, " << rows << "x" << cols << ", "
            << gens << " generations:\n"
            << study.to_table();
  return 0;
}
