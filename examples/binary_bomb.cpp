// A "binary bomb" on SwatVM — the CS31 lab where students defuse phases by
// reading assembly. Run with the phase answers as arguments:
//
//   build/examples/binary_bomb            # prints the disassembly to study
//   build/examples/binary_bomb 42 10 4 6  # attempt a defusal
//
// Phase 1: the first input must be 42.
// Phase 2: the next input must equal the sum of the following two.
// Phase 3: the next input must be the 6th Fibonacci number (computed by a
//          recursive function on the VM stack — trace it!).

#include <cstdlib>
#include <iostream>
#include <vector>

#include "pdc/isa/assembler.hpp"
#include "pdc/isa/vm.hpp"

namespace {

const char* kBomb = R"(
    ; ---- phase 1 ----
    in r0
    cmp r0, $42
    jne explode
    ; ---- phase 2 ----
    in r0
    in r1
    in r2
    mov r3, r1
    add r3, r2
    cmp r0, r3
    jne explode
    ; ---- phase 3: input must equal fib(6) ----
    in r4
    push $6
    call fib
    pop r1
    cmp r4, r0
    jne explode
    out $1
    halt
  explode:
    out $666
    halt
  fib:                 ; r0 = fib(arg); clobbers r1, r2
    push fp
    mov fp, sp
    mov r1, [fp+2]
    cmp r1, $2
    jge fib_rec
    mov r0, r1         ; fib(0)=0, fib(1)=1
    pop fp
    ret
  fib_rec:
    sub r1, $1
    push r1            ; n-1
    call fib
    pop r1
    push r0            ; save fib(n-1)
    mov r1, [fp+2]
    sub r1, $2
    push r1            ; n-2
    call fib
    pop r1
    pop r2             ; fib(n-1)
    add r0, r2
    pop fp
    ret
)";

}  // namespace

int main(int argc, char** argv) {
  const auto program = pdc::isa::assemble(kBomb);

  if (argc == 1) {
    std::cout << "Defuse the bomb! Study the disassembly and supply the\n"
                 "inputs as command-line arguments.\n\n"
              << pdc::isa::disassemble_program(program);
    return 0;
  }

  std::vector<std::int64_t> inputs;
  for (int i = 1; i < argc; ++i) inputs.push_back(std::atoll(argv[i]));

  pdc::isa::Vm vm(program);
  vm.set_input(inputs);
  try {
    vm.run();
  } catch (const pdc::isa::VmTrap& trap) {
    std::cout << "BOOM (trap): " << trap.what() << "\n";
    return 2;
  }

  if (!vm.output().empty() && vm.output().back() == 1) {
    std::cout << "Bomb defused in " << vm.instructions_executed()
              << " instructions. Nice work.\n";
    return 0;
  }
  std::cout << "BOOM! The bomb exploded. (hint: phase answers are\n"
               "42; a,b,c with a==b+c; fib(6))\n";
  return 1;
}
