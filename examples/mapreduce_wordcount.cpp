// MapReduce word count — the Hadoop-lab substitute from CS87.
//
//   build/examples/mapreduce_wordcount [docs words_per_doc]
//
// Shows the phase statistics (and what the combiner saves) plus the top
// words, then builds an inverted index over a tiny corpus.

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <map>
#include <vector>

#include "pdc/mapreduce/jobs.hpp"
#include "pdc/perf/table.hpp"

int main(int argc, char** argv) {
  const std::size_t docs = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 200;
  const std::size_t wpd = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 500;

  const auto corpus = pdc::mapreduce::synthetic_corpus(docs, wpd);

  pdc::perf::Table table({"combiner", "map emitted", "shuffled pairs",
                          "distinct keys"});
  std::map<std::string, std::int64_t> counts;
  for (const bool use_combiner : {false, true}) {
    pdc::mapreduce::JobConfig cfg;
    cfg.map_workers = 4;
    cfg.reduce_workers = 4;
    cfg.use_combiner = use_combiner;
    pdc::mapreduce::JobStats stats;
    counts = pdc::mapreduce::word_count(corpus, cfg, &stats);
    table.add_row({use_combiner ? "yes" : "no",
                   std::to_string(stats.map_emitted),
                   std::to_string(stats.shuffled),
                   std::to_string(stats.distinct_keys)});
  }
  std::cout << "word count over " << docs << " docs x " << wpd
            << " words:\n"
            << table.str() << "\n";

  // Top five words.
  std::vector<std::pair<std::int64_t, std::string>> ranked;
  for (const auto& [w, c] : counts) ranked.emplace_back(c, w);
  std::sort(ranked.rbegin(), ranked.rend());
  std::cout << "top words:\n";
  for (std::size_t i = 0; i < std::min<std::size_t>(5, ranked.size()); ++i)
    std::cout << "  " << ranked[i].second << " x" << ranked[i].first << "\n";

  // Inverted index demo.
  const std::vector<std::string> tiny = {
      "parallel threads share memory",
      "distributed processes pass messages",
      "parallel and distributed computing",
  };
  const auto index = pdc::mapreduce::inverted_index(tiny);
  std::cout << "\ninverted index (\"parallel\" appears in docs:";
  for (auto id : index.at("parallel")) std::cout << " " << id;
  std::cout << ")\n";
  return 0;
}
