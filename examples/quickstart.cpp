// Quickstart: the shared-memory parallel runtime in five minutes.
//
//   build/examples/quickstart [threads]
//
// Demonstrates parallel_for, parallel_reduce, parallel scan, and a
// strong-scaling study with the Amdahl fit — the core loop of every CS31
// lab report.

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <numeric>
#include <vector>

#include "pdc/core/parallel_for.hpp"
#include "pdc/core/reduce_scan.hpp"
#include "pdc/perf/scalability.hpp"

int main(int argc, char** argv) {
  const int max_threads = argc > 1 ? std::atoi(argv[1]) : 4;
  const std::size_t n = 1 << 22;

  // 1. parallel_for: fill a vector with f(i) in parallel.
  std::vector<double> xs(n);
  pdc::core::parallel_for(0, n, max_threads, [&](std::size_t i) {
    xs[i] = std::sin(static_cast<double>(i) * 1e-4);
  });

  // 2. parallel_reduce: sum it.
  const double total =
      pdc::core::parallel_reduce<double>(xs, 0.0, max_threads);
  std::cout << "sum of " << n << " elements = " << total << "\n";

  // 3. parallel scan: running sums.
  std::vector<double> prefix(n);
  pdc::core::parallel_inclusive_scan<double>(xs, prefix, 0.0, max_threads);
  std::cout << "prefix[last] = " << prefix.back()
            << " (must equal the sum: " << total << ")\n\n";

  // 4. Strong-scaling study of the reduction, with the Amdahl fit.
  pdc::perf::StudyConfig cfg;
  cfg.thread_counts.clear();
  for (int t = 1; t <= max_threads; t *= 2) cfg.thread_counts.push_back(t);
  cfg.repetitions = 3;
  const auto study = pdc::perf::run_strong_scaling(cfg, [&](int threads) {
    volatile double sink =
        pdc::core::parallel_reduce<double>(xs, 0.0, threads);
    (void)sink;
  });
  std::cout << "strong scaling of parallel_reduce (" << n << " doubles):\n"
            << study.to_table();
  return 0;
}
