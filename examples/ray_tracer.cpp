// Hybrid parallel ray tracer — the paper's CS40 "future work" project:
// "a large multi-week project in which students develop a hybrid MPI/CUDA
// ray tracer to run on GPU clusters." The substitution: message-passing
// ranks split the image into row bands (the MPI level) and each rank
// shades its band with a thread team (the GPU/data-parallel level).
//
//   build/examples/ray_tracer [width height ranks threads_per_rank]
//
// Renders a three-sphere scene with Lambertian shading + hard shadows and
// writes ray_trace.ppm; prints per-configuration timings so the hybrid
// decomposition is visible.

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <vector>

#include "pdc/core/parallel_for.hpp"
#include "pdc/mp/comm.hpp"
#include "pdc/perf/timer.hpp"

namespace {

struct Vec {
  double x = 0, y = 0, z = 0;
  Vec operator+(const Vec& o) const { return {x + o.x, y + o.y, z + o.z}; }
  Vec operator-(const Vec& o) const { return {x - o.x, y - o.y, z - o.z}; }
  Vec operator*(double s) const { return {x * s, y * s, z * s}; }
  [[nodiscard]] double dot(const Vec& o) const {
    return x * o.x + y * o.y + z * o.z;
  }
  [[nodiscard]] Vec normalized() const {
    const double len = std::sqrt(dot(*this));
    return len > 0 ? *this * (1.0 / len) : *this;
  }
};

struct Sphere {
  Vec center;
  double radius = 1;
  Vec color;  // 0..1 per channel
};

const Sphere kScene[] = {
    {{0.0, 0.0, -4.0}, 1.0, {0.9, 0.2, 0.2}},
    {{1.6, 0.4, -3.2}, 0.6, {0.2, 0.8, 0.3}},
    {{-1.4, -0.3, -3.0}, 0.5, {0.25, 0.4, 0.95}},
    {{0.0, -101.0, -4.0}, 100.0, {0.75, 0.75, 0.7}},  // ground
};
const Vec kLight = {4.0, 6.0, 1.0};

/// Ray-sphere intersection: smallest positive t, or -1.
double hit(const Vec& origin, const Vec& dir, const Sphere& s) {
  const Vec oc = origin - s.center;
  const double b = 2.0 * oc.dot(dir);
  const double c = oc.dot(oc) - s.radius * s.radius;
  const double disc = b * b - 4 * c;
  if (disc < 0) return -1;
  const double t = (-b - std::sqrt(disc)) / 2;
  return t > 1e-4 ? t : -1;
}

Vec shade_pixel(int px, int py, int width, int height) {
  const double aspect = static_cast<double>(width) / height;
  const Vec dir = Vec{(2.0 * (px + 0.5) / width - 1.0) * aspect,
                      1.0 - 2.0 * (py + 0.5) / height, -1.6}
                      .normalized();
  const Vec origin{0, 0.3, 0};

  double best_t = 1e30;
  const Sphere* best = nullptr;
  for (const auto& s : kScene) {
    const double t = hit(origin, dir, s);
    if (t > 0 && t < best_t) {
      best_t = t;
      best = &s;
    }
  }
  if (best == nullptr) {  // sky gradient
    const double k = 0.5 * (dir.y + 1.0);
    return Vec{0.6, 0.75, 1.0} * k + Vec{1.0, 1.0, 1.0} * (1.0 - k);
  }

  const Vec point = origin + dir * best_t;
  const Vec normal = (point - best->center).normalized();
  const Vec to_light = (kLight - point).normalized();

  // Hard shadow test.
  bool shadowed = false;
  for (const auto& s : kScene)
    if (&s != best && hit(point, to_light, s) > 0) shadowed = true;

  const double diffuse =
      shadowed ? 0.0 : std::max(0.0, normal.dot(to_light));
  return best->color * (0.15 + 0.85 * diffuse);
}

/// Render rows [row0, row1) with a thread team.
void render_band(std::vector<Vec>& image, int width, int height, int row0,
                 int row1, int threads) {
  pdc::core::parallel_for(
      static_cast<std::size_t>(row0), static_cast<std::size_t>(row1),
      threads, [&](std::size_t y) {
        for (int x = 0; x < width; ++x)
          image[y * static_cast<std::size_t>(width) +
                static_cast<std::size_t>(x)] =
              shade_pixel(x, static_cast<int>(y), width, height);
      });
}

}  // namespace

int main(int argc, char** argv) {
  const int width = argc > 1 ? std::atoi(argv[1]) : 640;
  const int height = argc > 2 ? std::atoi(argv[2]) : 360;
  const int ranks = argc > 3 ? std::atoi(argv[3]) : 2;
  const int threads = argc > 4 ? std::atoi(argv[4]) : 2;

  std::vector<Vec> image(static_cast<std::size_t>(width) * height);

  // Baseline: fully sequential.
  pdc::perf::Timer timer;
  render_band(image, width, height, 0, height, 1);
  const double t_seq = timer.elapsed_seconds();

  // Hybrid: message-passing ranks over row bands, threads inside.
  timer.restart();
  pdc::mp::Communicator comm(ranks);
  comm.run([&](pdc::mp::RankContext& ctx) {
    const int rows_per = (height + ctx.size() - 1) / ctx.size();
    const int row0 = ctx.rank() * rows_per;
    const int row1 = std::min(height, row0 + rows_per);
    if (row0 < row1) render_band(image, width, height, row0, row1, threads);
    ctx.barrier();  // all bands complete before rank 0 writes the file
  });
  const double t_par = timer.elapsed_seconds();

  std::cout << "rendered " << width << "x" << height << ": sequential "
            << t_seq << "s, hybrid (" << ranks << " ranks x " << threads
            << " threads) " << t_par << "s, speedup "
            << (t_par > 0 ? t_seq / t_par : 0.0) << "x\n";

  std::ofstream out("ray_trace.ppm", std::ios::binary);
  out << "P6\n" << width << " " << height << "\n255\n";
  for (const auto& px : image) {
    const auto to_byte = [](double v) {
      return static_cast<unsigned char>(
          255.0 * std::min(1.0, std::max(0.0, v)));
    };
    out << to_byte(px.x) << to_byte(px.y) << to_byte(px.z);
  }
  std::cout << "wrote ray_trace.ppm\n";
  return 0;
}
