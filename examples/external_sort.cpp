// The CS41 I/O-model lab: external merge sort on the simulated block
// device, comparing measured block I/Os with the textbook prediction
//   2 * (N/B) * (1 + ceil(log_{M/B-1}(N/M))).
//
//   build/examples/external_sort [n_values]

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <random>
#include <vector>

#include "pdc/extmem/external_sort.hpp"
#include "pdc/perf/table.hpp"

int main(int argc, char** argv) {
  const std::size_t n =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 100000;
  const std::size_t block = 512;  // 64 values per block

  std::mt19937_64 rng(7);
  std::vector<std::int64_t> base(n);
  for (auto& v : base) v = static_cast<std::int64_t>(rng());

  pdc::perf::Table table({"memory (blocks)", "runs", "passes", "fan-in",
                          "measured I/Os", "predicted I/Os"});
  for (const std::size_t mem_blocks : {3u, 4u, 8u, 16u, 64u, 256u}) {
    std::vector<std::int64_t> values = base;
    const auto stats =
        pdc::extmem::external_merge_sort(values, block, mem_blocks * block);
    if (!std::is_sorted(values.begin(), values.end())) {
      std::cerr << "SORT FAILED\n";
      return 1;
    }
    const double predicted =
        pdc::extmem::predicted_sort_ios(n, mem_blocks * block, block);
    table.add_row({std::to_string(mem_blocks),
                   std::to_string(stats.initial_runs),
                   std::to_string(stats.merge_passes),
                   std::to_string(stats.fan_in),
                   std::to_string(stats.total_ios()),
                   pdc::perf::fmt(predicted, 0)});
  }
  std::cout << "external merge sort of " << n << " int64 values, B = "
            << block << " bytes\n"
            << table.str()
            << "\nMore memory => fewer runs and fewer passes; at the top "
               "row the fan-in\nis minimal and extra merge passes appear, "
               "exactly as the model predicts.\n";
  return 0;
}
